//===- tests/AnalysesTest.cpp - Analyses cross-validation ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Cross-validation of every analysis against its independent baselines:
/// the four Strong Update implementations must agree, declarative and
/// imperative IFDS must agree, IDE must refine IFDS, and the FLIX
/// shortest paths must match Dijkstra. This is the repository's strongest
/// correctness evidence — the implementations share no code beyond the
/// input structs.
///
//===----------------------------------------------------------------------===//

#include "analyses/Ide.h"
#include "analyses/Ifds.h"
#include "analyses/PointsTo.h"
#include "analyses/ShortestPaths.h"
#include "analyses/StrongUpdate.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

//===----------------------------------------------------------------------===//
// Points-to (Figure 1)
//===----------------------------------------------------------------------===//

TEST(PointsToTest, Section21Example) {
  PointsToInput In;
  In.News = {{"o1", "A"}, {"o2", "B"}};
  In.Assigns = {{"o3", "o2"}};
  In.Stores = {{"o2", "f", "o1"}};
  In.Loads = {{"r", "o3", "f"}};
  PointsToResult R = runPointsTo(In);
  ASSERT_TRUE(R.Stats.ok());
  EXPECT_TRUE(R.varPointsTo("r", "A"));
  EXPECT_TRUE(R.varPointsTo("o3", "B"));
  EXPECT_FALSE(R.varPointsTo("r", "B"));
  EXPECT_EQ(R.HeapPointsTo.size(), 1u);
}

TEST(PointsToTest, StrategiesAgree) {
  PointsToInput In;
  for (int I = 0; I < 20; ++I) {
    In.News.push_back({"v" + std::to_string(I), "o" + std::to_string(I % 7)});
    In.Assigns.push_back(
        {"v" + std::to_string((I + 3) % 20), "v" + std::to_string(I)});
    In.Stores.push_back({"v" + std::to_string(I), "f",
                         "v" + std::to_string((I * 5 + 1) % 20)});
    In.Loads.push_back({"v" + std::to_string((I + 11) % 20),
                        "v" + std::to_string(I), "f"});
  }
  SolverOptions Naive, Semi;
  Naive.Strat = Strategy::Naive;
  Semi.Strat = Strategy::SemiNaive;
  PointsToResult RN = runPointsTo(In, Naive);
  PointsToResult RS = runPointsTo(In, Semi);
  ASSERT_TRUE(RN.Stats.ok());
  ASSERT_TRUE(RS.Stats.ok());
  auto Sorted = [](PointsToResult R) {
    std::sort(R.VarPointsTo.begin(), R.VarPointsTo.end());
    std::sort(R.HeapPointsTo.begin(), R.HeapPointsTo.end());
    return R;
  };
  PointsToResult SN = Sorted(std::move(RN)), SS = Sorted(std::move(RS));
  EXPECT_EQ(SN.VarPointsTo, SS.VarPointsTo);
  EXPECT_EQ(SN.HeapPointsTo, SS.HeapPointsTo);
}

//===----------------------------------------------------------------------===//
// Strong Update (Figure 4)
//===----------------------------------------------------------------------===//

/// p (unaliased, single target a) is stored through twice; with kills the
/// second store strongly updates a, so a load after it sees only the
/// second value.
PointerProgram strongUpdateScenario(bool WithKills) {
  PointerProgram P;
  P.NumVars = 4;   // p=0, q=1, r=2, x=3
  P.NumObjs = 3;   // a=0, b=1, c=2
  P.NumLabels = 3; // l0: *p=q; l1: *p=r; l2: x=*p
  P.AddrOf = {{0, 0}, {1, 1}, {2, 2}};
  P.Store = {{0, 0, 1}, {1, 0, 2}};
  P.Load = {{2, 3, 0}};
  P.Cfg = {{0, 1}, {1, 2}};
  if (WithKills)
    P.Kill = {{0, 0}, {1, 0}};
  return P;
}

TEST(StrongUpdateTest, StrongUpdateKillsStaleValue) {
  StrongUpdateResult R = runStrongUpdateFlix(strongUpdateScenario(true));
  ASSERT_TRUE(R.ok()) << R.Error;
  // x sees only c (object 2): the store at l1 strongly updated a.
  EXPECT_EQ(R.Pt[3], (std::set<int>{2}));
  EXPECT_EQ(R.PtH[0], (std::set<int>{1, 2}));
}

TEST(StrongUpdateTest, WeakUpdateKeepsBothValues) {
  StrongUpdateResult R = runStrongUpdateFlix(strongUpdateScenario(false));
  ASSERT_TRUE(R.ok()) << R.Error;
  // Without kills the store is weak: x sees b and c.
  EXPECT_EQ(R.Pt[3], (std::set<int>{1, 2}));
}

TEST(StrongUpdateTest, AllFourImplementationsAgreeOnScenario) {
  for (bool WithKills : {false, true}) {
    PointerProgram P = strongUpdateScenario(WithKills);
    StrongUpdateResult A = runStrongUpdateFlix(P);
    StrongUpdateResult B = runStrongUpdateFlixSource(P);
    StrongUpdateResult C = runStrongUpdateDatalog(P);
    StrongUpdateResult D = runStrongUpdateImperative(P);
    ASSERT_TRUE(A.ok()) << A.Error;
    ASSERT_TRUE(B.ok()) << B.Error;
    ASSERT_TRUE(C.ok()) << C.Error;
    ASSERT_TRUE(D.ok()) << D.Error;
    EXPECT_TRUE(A.samePointsTo(B)) << "flix vs flix-source, kills="
                                   << WithKills;
    EXPECT_TRUE(A.samePointsTo(C)) << "flix vs datalog, kills=" << WithKills;
    EXPECT_TRUE(A.samePointsTo(D)) << "flix vs imperative, kills="
                                   << WithKills;
  }
}

class StrongUpdateSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrongUpdateSeedTest, ImplementationsAgreeOnGeneratedPrograms) {
  PointerProgram P = generatePointerProgram(GetParam(), 300);
  StrongUpdateResult A = runStrongUpdateFlix(P);
  StrongUpdateResult B = runStrongUpdateFlixSource(P);
  StrongUpdateResult C = runStrongUpdateDatalog(P);
  StrongUpdateResult D = runStrongUpdateImperative(P);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  ASSERT_TRUE(C.ok()) << C.Error;
  ASSERT_TRUE(D.ok()) << D.Error;
  EXPECT_TRUE(A.samePointsTo(B)) << "flix vs flix-source";
  EXPECT_TRUE(A.samePointsTo(C)) << "flix vs datalog embedding";
  EXPECT_TRUE(A.samePointsTo(D)) << "flix vs imperative";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongUpdateSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 13, 42, 99));

TEST(StrongUpdateTest, NaiveAndSemiNaiveAgree) {
  PointerProgram P = generatePointerProgram(7, 400);
  StrongUpdateResult A =
      runStrongUpdateFlix(P, 0, Strategy::SemiNaive);
  StrongUpdateResult B = runStrongUpdateFlix(P, 0, Strategy::Naive);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_TRUE(A.samePointsTo(B));
}

TEST(StrongUpdateTest, TimeoutReported) {
  PointerProgram P = generatePointerProgram(11, 20000);
  StrongUpdateResult R = runStrongUpdateDatalog(P, 0.05);
  EXPECT_EQ(R.St, StrongUpdateResult::Status::Timeout);
}

//===----------------------------------------------------------------------===//
// IFDS (Figure 5)
//===----------------------------------------------------------------------===//

/// Hand-built two-procedure ICFG:
///   main: 0(start) -> 1(call f) -> 2(ret site) -> 3(end)
///   f:    4(start) -> 5 -> 6(end)
/// Facts: 0 = Λ, 1 = x (main), 2 = y (main), 3 = a (f).
/// main start gens x; the call passes x -> a; f moves a -> a (keeps);
/// return maps a -> y.
IfdsProblem handIfds() {
  IfdsProblem P;
  P.NumNodes = 7;
  P.NumProcs = 2;
  P.NumFacts = 4;
  P.CfgEdges = {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}};
  P.CallEdges = {{1, 1}}; // node 1 calls proc 1 (f)
  P.StartNodes = {0, 4};
  P.EndNodes = {3, 6};
  P.Seeds = {{0, 0}};
  P.EshIntra = [](int N, int D, std::vector<int> &Out) {
    if (D == 0) {
      Out.push_back(0);
      if (N == 0)
        Out.push_back(1); // gen x at main start
      return;
    }
    Out.push_back(D); // everything else flows through
  };
  P.EshCallStart = [](int Call, int D, int Target, std::vector<int> &Out) {
    (void)Call;
    (void)Target;
    if (D == 0)
      Out.push_back(0);
    if (D == 1)
      Out.push_back(3); // x -> a
  };
  P.EshEndReturn = [](int Target, int D, int Call, std::vector<int> &Out) {
    (void)Target;
    (void)Call;
    if (D == 0)
      Out.push_back(0);
    if (D == 3)
      Out.push_back(2); // a -> y
  };
  return P;
}

TEST(IfdsTest, HandExampleFlix) {
  IfdsResult R = runIfdsFlix(handIfds());
  ASSERT_TRUE(R.Ok) << R.Error;
  // x is live from node 1 onwards in main.
  EXPECT_TRUE(R.Result.count({1, 1}));
  // a reaches f's nodes.
  EXPECT_TRUE(R.Result.count({4, 3}));
  EXPECT_TRUE(R.Result.count({6, 3}));
  // y appears at the return site and flows to main's end.
  EXPECT_TRUE(R.Result.count({2, 2}));
  EXPECT_TRUE(R.Result.count({3, 2}));
  // y does not exist before the call returns.
  EXPECT_FALSE(R.Result.count({0, 2}));
  EXPECT_FALSE(R.Result.count({1, 2}));
}

TEST(IfdsTest, HandExampleImperativeMatches) {
  IfdsResult A = runIfdsFlix(handIfds());
  IfdsResult B = runIfdsImperative(handIfds());
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_TRUE(A.sameResult(B));
}

class IfdsSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IfdsSeedTest, DeclarativeMatchesImperative) {
  IcfgProgram G = generateIcfg(GetParam(), /*NumProcs=*/8,
                               /*NodesPerProc=*/12, /*FactsTotal=*/40,
                               /*CallsPerProc=*/2);
  IfdsProblem P = G.toIfdsProblem();
  IfdsResult A = runIfdsFlix(P);
  IfdsResult B = runIfdsImperative(P);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok);
  EXPECT_TRUE(A.sameResult(B))
      << "declarative " << A.Result.size() << " pairs vs imperative "
      << B.Result.size() << " pairs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IfdsSeedTest,
                         ::testing::Values(1, 2, 3, 7, 21, 77, 123, 1000));

TEST(IfdsTest, RecursiveProceduresTerminate) {
  // A procedure that calls itself: summaries must close the loop.
  IfdsProblem P;
  P.NumNodes = 4; // proc 0: 0 -> 1(call self) -> 2 -> 3
  P.NumProcs = 1;
  P.NumFacts = 2;
  P.CfgEdges = {{0, 1}, {1, 2}, {2, 3}};
  P.CallEdges = {{1, 0}};
  P.StartNodes = {0};
  P.EndNodes = {3};
  P.Seeds = {{0, 0}};
  P.EshIntra = [](int N, int D, std::vector<int> &Out) {
    Out.push_back(D);
    if (N == 0 && D == 0)
      Out.push_back(1);
  };
  P.EshCallStart = [](int, int D, int, std::vector<int> &Out) {
    Out.push_back(D);
  };
  P.EshEndReturn = [](int, int D, int, std::vector<int> &Out) {
    Out.push_back(D);
  };
  IfdsResult A = runIfdsFlix(P);
  IfdsResult B = runIfdsImperative(P);
  ASSERT_TRUE(A.Ok) << A.Error;
  EXPECT_TRUE(A.sameResult(B));
  EXPECT_TRUE(A.Result.count({3, 1}));
}

//===----------------------------------------------------------------------===//
// IDE (Figures 6 and 7)
//===----------------------------------------------------------------------===//

TEST(IdeTest, LinearConstantPropagationHandExample) {
  // main: 0 -> 1 -> 2. Node 0 gens x := 7; node 1 computes y := 2x + 1.
  // Facts: 0 = Λ, 1 = x, 2 = y.
  IdeProblem P;
  P.NumNodes = 3;
  P.NumProcs = 1;
  P.NumFacts = 3;
  P.CfgEdges = {{0, 1}, {1, 2}};
  P.StartNodes = {0};
  P.EndNodes = {2};
  P.MainProc = 0;
  P.MainFacts = {0};
  P.Seeds = {{0, 0, IdeProblem::Seed::Kind::Top, 0}};
  P.EshIntra = [](int N, int D, const TransformerLattice &T,
                  IdeProblem::Out &Out) {
    if (D == 0) {
      Out.push_back({0, T.identity()});
      if (N == 0)
        Out.push_back({1, T.nonBot(0, 7, T.constants().bot())}); // x := 7
      return;
    }
    if (N == 1 && D == 1)
      Out.push_back({2, T.nonBot(2, 1, T.constants().bot())}); // y := 2x+1
    Out.push_back({D, T.identity()});
  };
  P.EshCallStart = [](int, int, int, const TransformerLattice &,
                      IdeProblem::Out &) {};
  P.EshEndReturn = [](int, int, int, const TransformerLattice &,
                      IdeProblem::Out &) {};

  IdeResult R = runIdeFlix(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ((R.Values[{1, 1}]), "7");  // x after node 0
  EXPECT_EQ((R.Values[{2, 2}]), "15"); // y = 2*7+1 after node 1
  EXPECT_EQ((R.Values[{2, 1}]), "7");  // x still 7
}

TEST(IdeTest, JoinOfDifferentConstantsIsTop) {
  // Diamond: 0 -> 1a(gen x:=1) -> 3 and 0 -> 2(gen x:=2) -> 3.
  IdeProblem P;
  P.NumNodes = 4;
  P.NumProcs = 1;
  P.NumFacts = 2;
  P.CfgEdges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  P.StartNodes = {0};
  P.EndNodes = {3};
  P.MainFacts = {0};
  P.Seeds = {{0, 0, IdeProblem::Seed::Kind::Top, 0}};
  P.EshIntra = [](int N, int D, const TransformerLattice &T,
                  IdeProblem::Out &Out) {
    if (D == 0) {
      Out.push_back({0, T.identity()});
      if (N == 1)
        Out.push_back({1, T.nonBot(0, 1, T.constants().bot())});
      if (N == 2)
        Out.push_back({1, T.nonBot(0, 2, T.constants().bot())});
      return;
    }
    Out.push_back({D, T.identity()});
  };
  P.EshCallStart = [](int, int, int, const TransformerLattice &,
                      IdeProblem::Out &) {};
  P.EshEndReturn = [](int, int, int, const TransformerLattice &,
                      IdeProblem::Out &) {};
  IdeResult R = runIdeFlix(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ((R.Values[{3, 1}]), "Top"); // 1 ⊔ 2
}

class IdeSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdeSeedTest, IdeReachabilityMatchesIfds) {
  // §4.3: IDE computes the same edges as IFDS; with any micro-functions,
  // the reachable (node, fact) pairs must coincide with the IFDS result.
  IcfgProgram G = generateIcfg(GetParam(), /*NumProcs=*/6,
                               /*NodesPerProc=*/10, /*FactsTotal=*/30,
                               /*CallsPerProc=*/2);
  IfdsResult A = runIfdsFlix(G.toIfdsProblem());
  IdeResult B = runIdeFlix(G.toIdeProblem());
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.Result, B.Reachable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdeSeedTest,
                         ::testing::Values(1, 2, 5, 17, 99));

//===----------------------------------------------------------------------===//
// Shortest paths (§4.4)
//===----------------------------------------------------------------------===//

TEST(ShortestPathsTest, SmallGraphExact) {
  WeightedGraph G;
  G.NumNodes = 5;
  G.Edges = {{0, 1, 4}, {0, 2, 1}, {2, 1, 1}, {1, 3, 1}, {3, 4, 2}};
  SsspResult R = runShortestPathsFlix(G, 0);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Dist, (std::vector<int64_t>{0, 2, 1, 3, 5}));
}

TEST(ShortestPathsTest, UnreachableNodesAreInfinite) {
  WeightedGraph G;
  G.NumNodes = 3;
  G.Edges = {{0, 1, 1}};
  SsspResult R = runShortestPathsFlix(G, 0);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Dist[2], -1);
}

class SsspSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsspSeedTest, FlixMatchesDijkstraAndBellmanFord) {
  WeightedGraph G = generateGraph(GetParam(), 120, 3.0, 20);
  SsspResult A = runShortestPathsFlix(G, 0);
  SsspResult B = runDijkstra(G, 0);
  SsspResult C = runBellmanFord(G, 0);
  ASSERT_TRUE(A.Ok);
  EXPECT_TRUE(A.sameDistances(B));
  EXPECT_TRUE(B.sameDistances(C));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspSeedTest,
                         ::testing::Values(1, 2, 3, 10, 55, 77));

TEST(ShortestPathsTest, AllPairsMatchesRepeatedDijkstra) {
  WeightedGraph G = generateGraph(5, 30, 2.5, 9);
  std::vector<int64_t> AP = runAllPairsFlix(G);
  for (int S = 0; S < G.NumNodes; ++S) {
    SsspResult D = runDijkstra(G, S);
    for (int V = 0; V < G.NumNodes; ++V)
      EXPECT_EQ(AP[S * G.NumNodes + V], D.Dist[V])
          << "source " << S << " target " << V;
  }
}

} // namespace
