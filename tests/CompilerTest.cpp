//===- tests/CompilerTest.cpp - FLIX end-to-end compiler tests ------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Sema, interpreter and whole-pipeline tests: FLIX source in, solved
/// minimal model out.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lang/Compiler.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

/// The parity lattice in FLIX source, shared by several tests (Figure 2).
const char *ParityPrelude = R"flix(
enum Parity { case Top, case Even, case Odd, case Bot }

def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (Parity.Odd, Parity.Odd) => true
  case (_, Parity.Top) => true
  case _ => false
}

def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, x) => x
  case (x, Parity.Bot) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Top
}

def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Top, x) => x
  case (x, Parity.Top) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Bot
}

let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
)flix";

//===----------------------------------------------------------------------===//
// Sema diagnostics
//===----------------------------------------------------------------------===//

struct Compiled {
  // Heap-allocated so Compiled stays movable; the reference tracks the
  // same heap object across moves.
  std::unique_ptr<ValueFactory> FP = std::make_unique<ValueFactory>();
  ValueFactory &F = *FP;
  std::unique_ptr<FlixCompiler> C;
  bool Ok = false;
};

Compiled compileSrc(const std::string &Src) {
  Compiled R;
  R.C = std::make_unique<FlixCompiler>(*R.FP);
  R.Ok = R.C->compile(Src);
  return R;
}

TEST(SemaTest, UnknownTypeReported) {
  Compiled R = compileSrc("rel A(x: Bogus);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("unknown type 'Bogus'"),
            std::string::npos);
}

TEST(SemaTest, TypeErrorInDefBody) {
  Compiled R = compileSrc("def f(x: Int): Int = x && true;");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("Bool"), std::string::npos);
}

TEST(SemaTest, ReturnTypeMismatch) {
  Compiled R = compileSrc("def f(x: Int): Bool = x + 1;");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("returns Int, declared Bool"),
            std::string::npos);
}

TEST(SemaTest, UnknownPredicateInRule) {
  Compiled R = compileSrc("rel A(x: Int);\nB(x) :- A(x).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("unknown predicate 'B'"),
            std::string::npos);
}

TEST(SemaTest, AtomArityMismatch) {
  Compiled R = compileSrc("rel A(x: Int);\nrel B(x: Int);\n"
                          "B(x) :- A(x, x).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("atom supplies"), std::string::npos);
}

TEST(SemaTest, VariableTypeConflictAcrossAtoms) {
  Compiled R = compileSrc("rel A(x: Int);\nrel B(x: Str);\nrel C(x: Int);\n"
                          "C(x) :- A(x), B(x).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("has type Int, expected Str"),
            std::string::npos);
}

TEST(SemaTest, FilterMustReturnBool) {
  Compiled R = compileSrc("def f(x: Int): Int = x;\n"
                          "rel A(x: Int);\nrel B(x: Int);\n"
                          "B(x) :- A(x), f(x).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("must return Bool"), std::string::npos);
}

TEST(SemaTest, NegationOnLatticeRejected) {
  Compiled R = compileSrc(std::string(ParityPrelude) +
                          "lat A(x: Str, Parity<>);\nrel B(x: Str);\n"
                          "rel N(x: Str);\n"
                          "B(x) :- N(x), !A(x, Parity.Odd).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("negation is only supported on "
                                    "relations"),
            std::string::npos);
}

TEST(SemaTest, FunctionInBodyAtomRejected) {
  // §3.3: non-filter functions may not appear in rule bodies.
  Compiled R = compileSrc("def f(x: Int): Int = x + 1;\n"
                          "rel A(x: Int);\nrel B(x: Int);\n"
                          "B(x) :- A(f(x)).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("unknown variable 'x'"),
            std::string::npos);
}

TEST(SemaTest, LatticeAttrOnlyLastInLat) {
  Compiled R = compileSrc(std::string(ParityPrelude) +
                          "lat A(Parity<>, x: Str);");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, LatDeclarationRequiresBinding) {
  Compiled R = compileSrc("enum E { case A, case B }\nlat P(x: Str, E<>);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("no lattice binding"),
            std::string::npos);
}

TEST(SemaTest, UnboundHeadVariable) {
  // Last head term: reported through the expression checker.
  Compiled R = compileSrc("rel A(x: Int);\nrel B(x: Int, y: Int);\n"
                          "B(x, y) :- A(x).");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("unknown variable 'y'"),
            std::string::npos);
  // Key head term: reported as an unbound rule variable.
  Compiled R2 = compileSrc("rel A(x: Int);\nrel B(x: Int, y: Int);\n"
                           "B(y, x) :- A(x).");
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.C->diagnostics().find("not bound"), std::string::npos);
}

TEST(SemaTest, FactsMustBeConstant) {
  Compiled R = compileSrc("rel A(x: Int);\nA(x).");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, DuplicateDeclarationsReported) {
  Compiled R = compileSrc("rel A(x: Int);\nrel A(y: Str);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("duplicate predicate"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(InterpTest, ArithmeticAndComparison) {
  Compiled R = compileSrc(
      "def f(x: Int, y: Int): Int = (x + y) * 2 - x % 3;\n"
      "def g(x: Int): Bool = x > 2 && x <= 10 || x == 0 - 1;");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Interp &I = R.C->interp();
  Value Args[2] = {R.F.integer(7), R.F.integer(5)};
  EXPECT_EQ(I.call("f", Args), R.F.integer(23));
  Value A3[1] = {R.F.integer(3)};
  EXPECT_EQ(I.call("g", A3), R.F.boolean(true));
  Value AM1[1] = {R.F.integer(-1)};
  EXPECT_EQ(I.call("g", AM1), R.F.boolean(true));
  Value A20[1] = {R.F.integer(20)};
  EXPECT_EQ(I.call("g", A20), R.F.boolean(false));
}

TEST(InterpTest, MatchWithTagsAndLub) {
  Compiled R = compileSrc(ParityPrelude);
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Interp &I = R.C->interp();
  Value Odd = R.F.tag("Parity.Odd"), Even = R.F.tag("Parity.Even");
  Value Top = R.F.tag("Parity.Top"), Bot = R.F.tag("Parity.Bot");
  Value A1[2] = {Odd, Even};
  EXPECT_EQ(I.call("lub", A1), Top);
  Value A2[2] = {Bot, Even};
  EXPECT_EQ(I.call("lub", A2), Even);
  Value A3[2] = {Odd, Top};
  EXPECT_EQ(I.call("leq", A3), R.F.boolean(true));
  Value A4[2] = {Top, Odd};
  EXPECT_EQ(I.call("leq", A4), R.F.boolean(false));
  Value A5[2] = {Odd, Even};
  EXPECT_EQ(I.call("glb", A5), Bot);
}

TEST(InterpTest, RecursionWorks) {
  Compiled R = compileSrc(
      "def fact(n: Int): Int = if (n <= 1) 1 else n * fact(n - 1);");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(10)};
  EXPECT_EQ(R.C->interp().call("fact", A), R.F.integer(3628800));
}

TEST(InterpTest, RunawayRecursionReported) {
  Compiled R = compileSrc("def loop(n: Int): Int = loop(n + 1);");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(0)};
  R.C->interp().call("loop", A);
  EXPECT_TRUE(R.C->interp().hasError());
  EXPECT_NE(R.C->interp().error().find("call depth"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroReported) {
  Compiled R = compileSrc("def f(x: Int): Int = 10 / x;");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(0)};
  R.C->interp().call("f", A);
  EXPECT_TRUE(R.C->interp().hasError());
}

TEST(InterpTest, NoMatchingCaseReported) {
  Compiled R = compileSrc("enum E { case A, case B }\n"
                          "def f(x: E): Int = match x with { case E.A => 1 "
                          "};");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.tag("E.B")};
  R.C->interp().call("f", A);
  EXPECT_TRUE(R.C->interp().hasError());
}

TEST(InterpTest, SetLiteralsAndLet) {
  Compiled R = compileSrc(
      "def f(x: Int): Set[Int] = let y = x * 2; #{x, y, x};");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(3)};
  Value S = R.C->interp().call("f", A);
  ASSERT_TRUE(S.isSet());
  EXPECT_EQ(S, R.F.set({R.F.integer(3), R.F.integer(6)}));
}

TEST(InterpTest, NativeFunctionDispatch) {
  Compiled R = compileSrc("ext def double(x: Int): Int;\n"
                          "def quad(x: Int): Int = double(double(x));");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  R.C->registerNative("double",
                      [](ValueFactory &F, std::span<const Value> A) {
                        return F.integer(A[0].asInt() * 2);
                      });
  Value A[1] = {R.F.integer(5)};
  EXPECT_EQ(R.C->interp().call("quad", A), R.F.integer(20));
}

TEST(InterpTest, MissingNativeReported) {
  Compiled R = compileSrc("ext def nope(x: Int): Int;");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(1)};
  R.C->interp().call("nope", A);
  EXPECT_TRUE(R.C->interp().hasError());
}

//===----------------------------------------------------------------------===//
// End-to-end: compile and solve
//===----------------------------------------------------------------------===//

TEST(EndToEndTest, DatalogPointsTo) {
  Compiled R = compileSrc(R"flix(
rel New(v: Str, h: Str);
rel Assign(to: Str, from: Str);
rel Load(to: Str, base: Str, field: Str);
rel Store(base: Str, field: Str, from: Str);
rel VarPointsTo(v: Str, h: Str);
rel HeapPointsTo(h1: Str, f: Str, h2: Str);

New("o1", "A").
New("o2", "B").
Assign("o3", "o2").
Store("o2", "f", "o1").
Load("r", "o3", "f").

VarPointsTo(v, h) :- New(v, h).
VarPointsTo(v, h) :- Assign(v, v2), VarPointsTo(v2, h).
VarPointsTo(v, h2) :- Load(v, v2, f), VarPointsTo(v2, h1),
                      HeapPointsTo(h1, f, h2).
HeapPointsTo(h1, f, h2) :- Store(v1, f, v2), VarPointsTo(v1, h1),
                           VarPointsTo(v2, h2).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId VPT = *R.C->predicate("VarPointsTo");
  EXPECT_TRUE(S.contains(VPT, {R.F.string("r"), R.F.string("A")}));
  EXPECT_FALSE(S.contains(VPT, {R.F.string("r"), R.F.string("B")}));
  EXPECT_FALSE(R.C->interp().hasError());
}

TEST(EndToEndTest, ParityDataflowWithDivByZero) {
  // The Figure 2 program, reduced to its dataflow core.
  Compiled R = compileSrc(std::string(ParityPrelude) + R"flix(
def sum(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, _) => Parity.Bot
  case (_, Parity.Bot) => Parity.Bot
  case (Parity.Top, _) => Parity.Top
  case (_, Parity.Top) => Parity.Top
  case (x, y) => if (x == y) Parity.Even else Parity.Odd
}

def isMaybeZero(e: Parity): Bool = match e with {
  case Parity.Even => true
  case Parity.Top => true
  case _ => false
}

rel Assign(to: Str, from: Str);
rel AddExp(r: Str, v1: Str, v2: Str);
rel DivExp(r: Str, v1: Str, v2: Str);
lat IntVar(v: Str, Parity<>);
rel ArithmeticError(r: Str);

IntVar("a", Parity.Odd).
IntVar("b", Parity.Odd).
IntVar("x", Parity.Odd).
AddExp("c", "a", "b").
DivExp("d", "x", "c").
DivExp("e", "x", "a").

IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2), IntVar(v1, i1), IntVar(v2, i2).
ArithmeticError(r) :- DivExp(r, v1, v2), IntVar(v2, i2), isMaybeZero(i2).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId IntVar = *R.C->predicate("IntVar");
  PredId Err = *R.C->predicate("ArithmeticError");
  // odd + odd = even, so dividing by "c" may divide by zero.
  EXPECT_EQ(S.latValue(IntVar, {R.F.string("c")}), R.F.tag("Parity.Even"));
  EXPECT_TRUE(S.contains(Err, {R.F.string("d")}));
  // dividing by odd "a" cannot be a division by zero.
  EXPECT_FALSE(S.contains(Err, {R.F.string("e")}));
  EXPECT_FALSE(R.C->interp().hasError());
}

TEST(EndToEndTest, ShortestPathsWithHeadExpression) {
  // §4.4, with the min-lattice written directly in FLIX over Int.
  Compiled R = compileSrc(R"flix(
def leq(e1: Int, e2: Int): Bool = e1 >= e2
def lub(e1: Int, e2: Int): Int = if (e1 <= e2) e1 else e2
def glb(e1: Int, e2: Int): Int = if (e1 >= e2) e1 else e2
let Int<> = (99999999, 0, leq, lub, glb);

rel Edge(x: Str, y: Str, c: Int);
lat Dist(x: Str, Int<>);

Dist("s", 0).
Edge("s", "a", 1).
Edge("a", "b", 2).
Edge("s", "b", 5).
Edge("b", "c", 1).

Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId Dist = *R.C->predicate("Dist");
  EXPECT_EQ(S.latValue(Dist, {R.F.string("a")}), R.F.integer(1));
  EXPECT_EQ(S.latValue(Dist, {R.F.string("b")}), R.F.integer(3));
  EXPECT_EQ(S.latValue(Dist, {R.F.string("c")}), R.F.integer(4));
}

TEST(EndToEndTest, ConstructorInHeadLastTerm) {
  // Figure 4 uses SULattice.Single(b) in a head; check the general
  // expression-in-last-term lowering.
  Compiled R = compileSrc(R"flix(
enum SU { case Top, case Single(Str), case Bottom }
def leq(e1: SU, e2: SU): Bool = match (e1, e2) with {
  case (SU.Bottom, _) => true
  case (_, SU.Top) => true
  case (SU.Single(a), SU.Single(b)) => a == b
  case _ => false
}
def lub(e1: SU, e2: SU): SU = match (e1, e2) with {
  case (SU.Bottom, x) => x
  case (x, SU.Bottom) => x
  case (SU.Single(a), SU.Single(b)) => if (a == b) SU.Single(a) else SU.Top
  case _ => SU.Top
}
def glb(e1: SU, e2: SU): SU = match (e1, e2) with {
  case (SU.Top, x) => x
  case (x, SU.Top) => x
  case (SU.Single(a), SU.Single(b)) => if (a == b) SU.Single(a) else
                                       SU.Bottom
  case _ => SU.Bottom
}
let SU<> = (SU.Bottom, SU.Top, leq, lub, glb);

rel Store(l: Str, p: Str);
lat After(l: Str, SU<>);

Store("l1", "p").
Store("l2", "q").
Store("l2", "r").

After(l, SU.Single(p)) :- Store(l, p).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId After = *R.C->predicate("After");
  EXPECT_EQ(S.latValue(After, {R.F.string("l1")}),
            R.F.tag("SU.Single", R.F.string("p")));
  // two different stores at l2 join to Top.
  EXPECT_EQ(S.latValue(After, {R.F.string("l2")}), R.F.tag("SU.Top"));
}

TEST(EndToEndTest, BinderFromExtDef) {
  Compiled R = compileSrc(R"flix(
ext def succs(n: Int): Set[(Int, Int)];
rel Node(n: Int);
rel Out(a: Int, b: Int);
Node(10).
Out(a, b) :- Node(n), (a, b) <- succs(n).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  R.C->registerNative("succs",
                      [](ValueFactory &F, std::span<const Value> A) {
                        int64_t N = A[0].asInt();
                        return F.set({F.tuple({F.integer(N), F.integer(N)}),
                                      F.tuple({F.integer(N), F.integer(N + 1)})});
                      });
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId Out = *R.C->predicate("Out");
  EXPECT_TRUE(S.contains(Out, {R.F.integer(10), R.F.integer(10)}));
  EXPECT_TRUE(S.contains(Out, {R.F.integer(10), R.F.integer(11)}));
  EXPECT_FALSE(R.C->interp().hasError());
}

TEST(EndToEndTest, StratifiedNegationFromSource) {
  Compiled R = compileSrc(R"flix(
rel Node(x: Int);
rel Edge(x: Int, y: Int);
rel Reach(x: Int);
rel Unreach(x: Int);
Node(1). Node(2). Node(3).
Edge(1, 2).
Reach(1).
Reach(y) :- Reach(x), Edge(x, y).
Unreach(x) :- Node(x), !Reach(x).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  PredId Unreach = *R.C->predicate("Unreach");
  EXPECT_FALSE(S.contains(Unreach, {R.F.integer(1)}));
  EXPECT_FALSE(S.contains(Unreach, {R.F.integer(2)}));
  EXPECT_TRUE(S.contains(Unreach, {R.F.integer(3)}));
}

TEST(EndToEndTest, ProgrammaticFactInjection) {
  Compiled R = compileSrc(R"flix(
rel Edge(x: Int, y: Int);
rel Path(x: Int, y: Int);
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  for (int I = 0; I < 5; ++I) {
    Value T[2] = {R.F.integer(I), R.F.integer(I + 1)};
    EXPECT_TRUE(R.C->addFact("Edge", T));
  }
  Value Bad[1] = {R.F.integer(0)};
  EXPECT_FALSE(R.C->addFact("Edge", Bad));     // arity mismatch
  EXPECT_FALSE(R.C->addFact("Nonexistent", Bad));
  Solver S(R.C->program());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(*R.C->predicate("Path"),
                         {R.F.integer(0), R.F.integer(5)}));
}

TEST(EndToEndTest, RuntimeErrorSurfacesAfterSolve) {
  Compiled R = compileSrc(R"flix(
def bad(x: Int): Int = x / 0;
rel A(x: Int);
rel B(x: Int);
A(1).
B(bad(x)) :- A(x).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Solver S(R.C->program());
  S.solve();
  EXPECT_TRUE(R.C->interp().hasError());
  EXPECT_NE(R.C->interp().error().find("division by zero"),
            std::string::npos);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Exhaustiveness warnings
//===----------------------------------------------------------------------===//

TEST(ExhaustivenessTest, MissingEnumCaseWarns) {
  Compiled R = compileSrc("enum E { case A, case B, case C }\n"
                          "def f(x: E): Int = match x with { case E.A => 1 "
                          "case E.B => 2 };");
  EXPECT_TRUE(R.Ok) << R.C->diagnostics(); // warning, not error
  EXPECT_NE(R.C->diagnostics().find("may not be exhaustive"),
            std::string::npos);
  EXPECT_NE(R.C->diagnostics().find("'E.C'"), std::string::npos);
}

TEST(ExhaustivenessTest, WildcardSilencesWarning) {
  Compiled R = compileSrc("enum E { case A, case B }\n"
                          "def f(x: E): Int = match x with { case E.A => 1 "
                          "case _ => 2 };");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.C->diagnostics().find("exhaustive"), std::string::npos);
}

TEST(ExhaustivenessTest, AllCasesCoveredNoWarning) {
  Compiled R = compileSrc("enum E { case A, case B }\n"
                          "def f(x: E): Int = match x with { case E.A => 1 "
                          "case E.B => 2 };");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.C->diagnostics().find("exhaustive"), std::string::npos);
}

TEST(ExhaustivenessTest, PayloadLiteralDoesNotCoverCase) {
  // E.A(3) only covers part of case A.
  Compiled R = compileSrc("enum E { case A(Int), case B }\n"
                          "def f(x: E): Int = match x with "
                          "{ case E.A(3) => 1 case E.B => 2 };");
  EXPECT_TRUE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("'E.A'"), std::string::npos);
}

TEST(ExhaustivenessTest, IrrefutablePayloadCoversCase) {
  Compiled R = compileSrc("enum E { case A(Int), case B }\n"
                          "def f(x: E): Int = match x with "
                          "{ case E.A(n) => n case E.B => 2 };");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.C->diagnostics().find("exhaustive"), std::string::npos);
}

TEST(ExhaustivenessTest, BoolMatchMissingFalseWarns) {
  Compiled R = compileSrc(
      "def f(x: Bool): Int = match x with { case true => 1 };");
  EXPECT_TRUE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("missing case 'false'"),
            std::string::npos);
}

TEST(ExhaustivenessTest, TupleCatchAllViaVariablePatterns) {
  Compiled R = compileSrc(
      "def f(x: Int, y: Int): Int = match (x, y) with "
      "{ case (0, 0) => 0 case (a, b) => a + b };");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.C->diagnostics().find("exhaustive"), std::string::npos);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Index hints (§4.5)
//===----------------------------------------------------------------------===//

TEST(IndexHintTest, HintPrebuildsIndexAndPreservesResults) {
  Compiled R = compileSrc(R"flix(
rel Edge(src: Int, dst: Int);
rel Path(src: Int, dst: Int);
index Edge(src);
Edge(1, 2). Edge(2, 3).
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  ASSERT_EQ(R.C->checkedModule().IndexHints.size(), 1u);
  EXPECT_EQ(R.C->checkedModule().IndexHints[0].second, 0b01u);
  Solver S(R.C->program());
  // The hinted index exists before any rule evaluation.
  EXPECT_GE(S.table(*R.C->predicate("Edge")).numIndexes(), 1u);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(*R.C->predicate("Path"),
                         {R.F.integer(1), R.F.integer(3)}));
}

TEST(IndexHintTest, UnknownPredicateRejected) {
  Compiled R = compileSrc("rel A(x: Int);\nindex B(x);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("unknown predicate 'B'"),
            std::string::npos);
}

TEST(IndexHintTest, UnknownAttributeRejected) {
  Compiled R = compileSrc("rel A(x: Int, y: Int);\nindex A(z);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("no key attribute 'z'"),
            std::string::npos);
}

TEST(IndexHintTest, FullKeyIndexRejected) {
  Compiled R = compileSrc("rel A(x: Int, y: Int);\nindex A(x, y);");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("duplicates the primary"),
            std::string::npos);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Pattern-matching depth and scoping
//===----------------------------------------------------------------------===//

TEST(InterpPatternTest, NestedTagAndTuplePatterns) {
  Compiled R = compileSrc(R"flix(
enum Shape { case Circle(Int), case Rect((Int, Int)), case Point }
def area(s: Shape): Int = match s with {
  case Shape.Circle(r) => 3 * r * r
  case Shape.Rect((w, h)) => w * h
  case Shape.Point => 0
}
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Interp &I = R.C->interp();
  Value Circle[1] = {R.F.tag("Shape.Circle", R.F.integer(2))};
  EXPECT_EQ(I.call("area", Circle), R.F.integer(12));
  Value Rect[1] = {
      R.F.tag("Shape.Rect", R.F.tuple({R.F.integer(3), R.F.integer(4)}))};
  EXPECT_EQ(I.call("area", Rect), R.F.integer(12));
  Value Point[1] = {R.F.tag("Shape.Point")};
  EXPECT_EQ(I.call("area", Point), R.F.integer(0));
}

TEST(InterpPatternTest, LiteralPatternsSelectPrecisely) {
  Compiled R = compileSrc(R"flix(
def name(x: Int): Str = match x with {
  case 0 => "zero"
  case 1 => "one"
  case -1 => "minus one"
  case _ => "many"
}
def greet(s: Str): Int = match s with {
  case "hi" => 1
  case _ => 0
}
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Interp &I = R.C->interp();
  Value A[1] = {R.F.integer(-1)};
  EXPECT_EQ(I.call("name", A), R.F.string("minus one"));
  Value B[1] = {R.F.integer(42)};
  EXPECT_EQ(I.call("name", B), R.F.string("many"));
  Value C2[1] = {R.F.string("hi")};
  EXPECT_EQ(I.call("greet", C2), R.F.integer(1));
}

TEST(InterpPatternTest, PatternVariableShadowingRejected) {
  Compiled R = compileSrc("def f(x: Int): Int = match x with "
                          "{ case x => x };");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.C->diagnostics().find("shadows"), std::string::npos);
}

TEST(InterpPatternTest, FirstMatchingCaseWins) {
  Compiled R = compileSrc(R"flix(
def f(x: Int): Int = match x with {
  case _ => 1
  case 0 => 2
}
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Value A[1] = {R.F.integer(0)};
  EXPECT_EQ(R.C->interp().call("f", A), R.F.integer(1));
}

TEST(InterpPatternTest, MatchOnTupleOfEnums) {
  // The Figure 2/4/7 style: matching a pair of lattice elements.
  Compiled R = compileSrc(std::string(ParityPrelude) + R"flix(
def bothOdd(a: Parity, b: Parity): Bool = match (a, b) with {
  case (Parity.Odd, Parity.Odd) => true
  case _ => false
}
)flix");
  ASSERT_TRUE(R.Ok) << R.C->diagnostics();
  Interp &I = R.C->interp();
  Value Odd = R.F.tag("Parity.Odd"), Even = R.F.tag("Parity.Even");
  Value A[2] = {Odd, Odd};
  EXPECT_EQ(I.call("bothOdd", A), R.F.boolean(true));
  Value B[2] = {Odd, Even};
  EXPECT_EQ(I.call("bothOdd", B), R.F.boolean(false));
}

} // namespace
