//===- tests/DifferentialTest.cpp - Random-program differential tests ------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Property-based differential testing: on randomly generated programs in
/// the §3.2 core fragment,
///   (1) naive and semi-naive evaluation agree (the paper's §3.7
///       equivalence argument),
///   (2) evaluation options (indexes, reordering) do not change results,
///   (3) the solver matches the brute-force model-theoretic semantics.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/ModelTheory.h"
#include "workload/RandomProgram.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

Interpretation solveWith(const Program &P, SolverOptions Opts) {
  Solver S(P, Opts);
  SolveStats St = S.solve();
  EXPECT_TRUE(St.ok()) << St.Error;
  return solverModel(P, S);
}

class DifferentialSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSeedTest, NaiveEqualsSemiNaive) {
  RandomProgramOptions Opts;
  Opts.NumRelations = 2;
  Opts.NumLatPredicates = 2;
  Opts.NumRules = 6;
  Opts.NumFacts = 6;
  Opts.NumConstants = 3;
  RandomProgramBundle B = generateRandomProgram(GetParam(), Opts);

  SolverOptions Naive, Semi;
  Naive.Strat = Strategy::Naive;
  Semi.Strat = Strategy::SemiNaive;
  EXPECT_EQ(solveWith(*B.Prog, Naive), solveWith(*B.Prog, Semi))
      << "program:\n"
      << B.Prog->dump();
}

TEST_P(DifferentialSeedTest, OptionsDoNotChangeResults) {
  RandomProgramOptions Opts;
  Opts.NumRules = 5;
  Opts.NumFacts = 5;
  Opts.NumConstants = 3;
  RandomProgramBundle B = generateRandomProgram(GetParam() * 31 + 7, Opts);

  SolverOptions Base;
  SolverOptions NoIndex;
  NoIndex.UseIndexes = false;
  SolverOptions Reorder;
  Reorder.ReorderBody = true;
  Interpretation A = solveWith(*B.Prog, Base);
  EXPECT_EQ(A, solveWith(*B.Prog, NoIndex)) << B.Prog->dump();
  EXPECT_EQ(A, solveWith(*B.Prog, Reorder)) << B.Prog->dump();
}

TEST_P(DifferentialSeedTest, SolverMatchesModelTheory) {
  RandomProgramOptions Opts;
  Opts.NumRelations = 1;
  Opts.NumLatPredicates = 1;
  Opts.NumRules = 3;
  Opts.NumFacts = 3;
  Opts.NumConstants = 2;
  Opts.MaxBodyAtoms = 2;
  Opts.ForBruteForce = true;
  RandomProgramBundle B = generateRandomProgram(GetParam() * 17 + 3, Opts);
  if (!B.BruteForceable)
    GTEST_SKIP() << "generated program too large for brute force";

  auto M = bruteForceMinimalModel(*B.Prog, B.Herbrand);
  ASSERT_TRUE(M.has_value()) << B.Prog->dump();
  Solver S(*B.Prog);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(*B.Prog, S), dropBottomAtoms(*B.Prog, *M))
      << "program:\n"
      << B.Prog->dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedTest,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
