//===- tests/ExpressivenessTest.cpp - beyond-Datalog expressiveness --------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the paper's expressiveness claims:
///   * §3.4 compositionality — conditional constant propagation obtained
///     by composing a reachability analysis and a constant propagation
///     analysis through shared predicates (isReachable / isTrue /
///     isFalse), strictly more precise than the direct product;
///   * §1 "even a simple context-sensitive analysis such as k-CFA cannot
///     be expressed [in Datalog]" — a 2-CFA-style reachability analysis
///     whose contexts are tuples built by a transfer function.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lang/Compiler.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

/// The constant lattice written in FLIX, with the filters the §3.4 sketch
/// names.
const char *ConstLatticePrelude = R"flix(
enum Val { case Top, case Cst(Int), case Bot }

def leq(e1: Val, e2: Val): Bool = match (e1, e2) with {
  case (Val.Bot, _) => true
  case (_, Val.Top) => true
  case (Val.Cst(a), Val.Cst(b)) => a == b
  case _ => false
}
def lub(e1: Val, e2: Val): Val = match (e1, e2) with {
  case (Val.Bot, x) => x
  case (x, Val.Bot) => x
  case (Val.Cst(a), Val.Cst(b)) => if (a == b) Val.Cst(a) else Val.Top
  case _ => Val.Top
}
def glb(e1: Val, e2: Val): Val = match (e1, e2) with {
  case (Val.Top, x) => x
  case (x, Val.Top) => x
  case (Val.Cst(a), Val.Cst(b)) => if (a == b) Val.Cst(a) else Val.Bot
  case _ => Val.Bot
}
let Val<> = (Val.Bot, Val.Top, leq, lub, glb);

def mayBeNonZero(c: Val): Bool = match c with {
  case Val.Cst(k) => k != 0
  case Val.Top => true
  case _ => false
}
def mayBeZero(c: Val): Bool = match c with {
  case Val.Cst(k) => k == 0
  case Val.Top => true
  case _ => false
}
)flix";

/// The two component analyses, composed per §3.4 by sharing isReachable /
/// isTrue / isFalse. The analyzed program:
///
///   s0: x := 1
///   s1: if (x) goto s2 else goto s3
///   s2: y := 7; goto s4
///   s3: y := 8; goto s4      <- dead: x is the constant 1
///   s4: (exit)
const char *ConditionalConstProp = R"flix(
rel ConstStmt(s: Str, v: Str, k: Int);
rel Branch(s: Str, v: Str, tTgt: Str, fTgt: Str);
rel Goto(s: Str, t: Str);
rel Next(s: Str, t: Str);
rel Entry(s: Str);
rel IsReachable(s: Str);
rel IsTrue(s: Str);
rel IsFalse(s: Str);
lat VarVal(v: Str, Val<>);

// --- reachability analysis: uses IsTrue/IsFalse, infers IsReachable ---
IsReachable(s) :- Entry(s).
IsReachable(t) :- IsReachable(s), Next(s, t).
IsReachable(t) :- IsReachable(s), Goto(s, t).
IsReachable(t) :- Branch(s, v, t, f), IsReachable(s), IsTrue(s).
IsReachable(f) :- Branch(s, v, t, f), IsReachable(s), IsFalse(s).

// --- constant propagation: uses IsReachable, infers IsTrue/IsFalse ---
VarVal(v, Val.Cst(k)) :- ConstStmt(s, v, k), IsReachable(s).
IsTrue(s) :- Branch(s, v, t, f), VarVal(v, c), mayBeNonZero(c).
IsFalse(s) :- Branch(s, v, t, f), VarVal(v, c), mayBeZero(c).

// --- the program under analysis ---
Entry("s0").
ConstStmt("s0", "x", 1).
Next("s0", "s1").
Branch("s1", "x", "s2", "s3").
ConstStmt("s2", "y", 7).
Goto("s2", "s4").
ConstStmt("s3", "y", 8).
Goto("s3", "s4").
)flix";

TEST(CompositionTest, ConditionalConstantPropagation) {
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile(std::string(ConstLatticePrelude) +
                        ConditionalConstProp))
      << C.diagnostics();
  Solver S(C.program());
  ASSERT_TRUE(S.solve().ok());

  auto reachable = [&](const char *St) {
    return S.contains(*C.predicate("IsReachable"), {F.string(St)});
  };
  // x is the constant 1, so the branch always takes the true edge; the
  // composed analysis proves s3 dead...
  EXPECT_TRUE(reachable("s0"));
  EXPECT_TRUE(reachable("s1"));
  EXPECT_TRUE(reachable("s2"));
  EXPECT_FALSE(reachable("s3"));
  EXPECT_TRUE(reachable("s4"));
  // ...and therefore y is the constant 7, not Cst(7) ⊔ Cst(8) = ⊤.
  EXPECT_EQ(S.latValue(*C.predicate("VarVal"), {F.string("y")}),
            F.tag("Val.Cst", F.integer(7)));
  EXPECT_EQ(S.latValue(*C.predicate("VarVal"), {F.string("x")}),
            F.tag("Val.Cst", F.integer(1)));
}

TEST(CompositionTest, DirectProductIsLessPrecise) {
  // The same program without the feedback edge (reachability treats both
  // branch targets as reachable — the direct product of §3.4): y joins to
  // ⊤. This is the precision the composition buys.
  std::string Src = std::string(ConstLatticePrelude) + R"flix(
rel ConstStmt(s: Str, v: Str, k: Int);
rel Branch(s: Str, v: Str, tTgt: Str, fTgt: Str);
rel Goto(s: Str, t: Str);
rel Next(s: Str, t: Str);
rel Entry(s: Str);
rel IsReachable(s: Str);
lat VarVal(v: Str, Val<>);

IsReachable(s) :- Entry(s).
IsReachable(t) :- IsReachable(s), Next(s, t).
IsReachable(t) :- IsReachable(s), Goto(s, t).
// Conservative: both branch targets reachable, no value feedback.
IsReachable(t) :- Branch(s, v, t, f), IsReachable(s).
IsReachable(f) :- Branch(s, v, t, f), IsReachable(s).

VarVal(v, Val.Cst(k)) :- ConstStmt(s, v, k), IsReachable(s).

Entry("s0").
ConstStmt("s0", "x", 1).
Next("s0", "s1").
Branch("s1", "x", "s2", "s3").
ConstStmt("s2", "y", 7).
Goto("s2", "s4").
ConstStmt("s3", "y", 8).
Goto("s3", "s4").
)flix";
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile(Src)) << C.diagnostics();
  Solver S(C.program());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(*C.predicate("IsReachable"), {F.string("s3")}));
  EXPECT_EQ(S.latValue(*C.predicate("VarVal"), {F.string("y")}),
            F.tag("Val.Top"));
}

TEST(CompositionTest, DisjointProgramsComposeByUnion) {
  // §3.4: the model of the union of two disjoint programs is the union of
  // their models.
  const char *P1 = "rel A(x: Int);\nrel B(x: Int);\nA(1).\nB(x) :- A(x).\n";
  const char *P2 = "rel C(x: Str);\nrel D(x: Str);\nC(\"v\").\n"
                   "D(x) :- C(x).\n";
  ValueFactory F1, F2, F12;
  FlixCompiler C1(F1), C2(F2), C12(F12);
  ASSERT_TRUE(C1.compile(P1));
  ASSERT_TRUE(C2.compile(P2));
  ASSERT_TRUE(C12.compile(std::string(P1) + P2));
  Solver S1(C1.program()), S2(C2.program()), S12(C12.program());
  ASSERT_TRUE(S1.solve().ok());
  ASSERT_TRUE(S2.solve().ok());
  ASSERT_TRUE(S12.solve().ok());
  EXPECT_EQ(S12.table(*C12.predicate("B")).size(),
            S1.table(*C1.predicate("B")).size());
  EXPECT_EQ(S12.table(*C12.predicate("D")).size(),
            S2.table(*C2.predicate("D")).size());
  EXPECT_TRUE(S12.contains(*C12.predicate("B"), {F12.integer(1)}));
  EXPECT_TRUE(S12.contains(*C12.predicate("D"), {F12.string("v")}));
}

//===----------------------------------------------------------------------===//
// k-CFA-style contexts (compound datatypes + functions, §1)
//===----------------------------------------------------------------------===//

TEST(ContextSensitivityTest, TwoCfaWithTupleContexts) {
  // A 2-CFA-style reachability analysis: the context is the tuple of the
  // two most recent call sites, built by the `push` transfer function —
  // compound data that pure Datalog cannot construct.
  //
  // Call graph: main -(c1)-> id, main -(c2)-> id, id -(c3)-> log.
  // With 2-CFA, log is reached under contexts (c3, c1) and (c3, c2),
  // keeping the two chains apart.
  const char *Src = R"flix(
def push(ctx: (Str, Str), site: Str): (Str, Str) = match ctx with {
  case (a, b) => (site, a)
}

rel Call(caller: Str, site: Str, target: Str);
rel Reach(m: Str, ctx: (Str, Str));

Call("main", "c1", "id").
Call("main", "c2", "id").
Call("id", "c3", "log").

Reach("main", ("", "")).
Reach(t, push(ctx, site)) :- Reach(c, ctx), Call(c, site, t).
)flix";
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile(Src)) << C.diagnostics();
  Solver S(C.program());
  ASSERT_TRUE(S.solve().ok());

  PredId Reach = *C.predicate("Reach");
  auto ctx = [&](const char *A, const char *B) {
    return F.tuple({F.string(A), F.string(B)});
  };
  EXPECT_TRUE(S.contains(Reach, {F.string("id"), ctx("c1", "")}));
  EXPECT_TRUE(S.contains(Reach, {F.string("id"), ctx("c2", "")}));
  EXPECT_TRUE(S.contains(Reach, {F.string("log"), ctx("c3", "c1")}));
  EXPECT_TRUE(S.contains(Reach, {F.string("log"), ctx("c3", "c2")}));
  // The contexts keep the chains apart: no (c3, c3) or (c1, c2) blends.
  EXPECT_FALSE(S.contains(Reach, {F.string("log"), ctx("c3", "c3")}));
  EXPECT_FALSE(S.contains(Reach, {F.string("log"), ctx("c1", "c2")}));
  EXPECT_EQ(S.table(Reach).size(), 5u);
}

TEST(ContextSensitivityTest, RecursionTerminatesWithBoundedContexts) {
  // Self-recursion cycles through a bounded context set and terminates.
  const char *Src = R"flix(
def push(ctx: (Str, Str), site: Str): (Str, Str) = match ctx with {
  case (a, b) => (site, a)
}
rel Call(caller: Str, site: Str, target: Str);
rel Reach(m: Str, ctx: (Str, Str));
Call("main", "c1", "f").
Call("f", "c2", "f").
Reach("main", ("", "")).
Reach(t, push(ctx, site)) :- Reach(c, ctx), Call(c, site, t).
)flix";
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile(Src)) << C.diagnostics();
  Solver S(C.program());
  ASSERT_TRUE(S.solve().ok());
  PredId Reach = *C.predicate("Reach");
  // f under (c1,""), (c2,c1), (c2,c2) — and nothing else.
  EXPECT_EQ(S.table(Reach).size(), 4u);
  EXPECT_TRUE(S.contains(
      Reach, {F.string("f"), F.tuple({F.string("c2"), F.string("c2")})}));
}

} // namespace
