//===- tests/IncrementalSolverTest.cpp - Incremental engine tests ---------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the incremental evaluation subsystem (src/incremental)
// plus randomized differential tests: after every batch of insertions and
// retractions, update() must be per-cell lattice-equal to a from-scratch
// Solver::solve() on the final fact set — on the graph, ICFG and pointer
// workloads, sequentially and with parallel delta rounds.
//
//===----------------------------------------------------------------------===//

#include "incremental/IncrementalSolver.h"

#include "runtime/Lattices.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>

using namespace flix;

namespace {

/// Per-predicate key → lattice value map of the live (non-tombstoned)
/// rows. Incremental and scratch solvers share one ValueFactory, so the
/// interned Value handles compare directly.
using Model = std::vector<std::unordered_map<Value, Value>>;

template <typename SolverT>
Model modelOf(const Program &P, const SolverT &S) {
  Model M(P.predicates().size());
  for (PredId Pr = 0; Pr < P.predicates().size(); ++Pr) {
    const Table &T = S.table(Pr);
    for (const Table::Row &R : T.rows()) {
      if (R.Lat == T.botValue())
        continue;
      M[Pr].emplace(R.Key, R.Lat);
    }
  }
  return M;
}

void expectSameModel(const Program &P, const Model &Inc,
                     const Model &Scratch) {
  ASSERT_EQ(Inc.size(), Scratch.size());
  for (PredId Pr = 0; Pr < Inc.size(); ++Pr) {
    const ValueFactory &F = P.factory();
    EXPECT_EQ(Inc[Pr].size(), Scratch[Pr].size())
        << "row count mismatch in " << P.predicate(Pr).Name;
    for (const auto &[Key, Lat] : Scratch[Pr]) {
      auto It = Inc[Pr].find(Key);
      if (It == Inc[Pr].end()) {
        ADD_FAILURE() << P.predicate(Pr).Name << " missing row "
                      << F.toString(Key);
        continue;
      }
      EXPECT_TRUE(It->second == Lat)
          << P.predicate(Pr).Name << F.toString(Key) << ": incremental "
          << F.toString(It->second) << " vs scratch " << F.toString(Lat);
    }
  }
}

/// Differential check: a from-scratch sequential solve of \p Facts must
/// produce the same model as the incremental solver's current state.
void expectMatchesScratch(const IncrementalSolver &IS,
                          const std::function<Program()> &Build) {
  Program SP = Build();
  Solver SS(SP);
  ASSERT_TRUE(SS.solve().ok());
  expectSameModel(SP, modelOf(SP, IS), modelOf(SP, SS));
}

//===----------------------------------------------------------------------===//
// Units: transitive closure (relational)
//===----------------------------------------------------------------------===//

struct TcCase {
  ValueFactory F;
  PredId Edge = 0, Path = 0;
  std::set<std::pair<int, int>> Edges;

  Program build() {
    Program P(F);
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    for (auto [A, B] : Edges)
      P.addFact(Edge, {F.integer(A), F.integer(B)});
    return P;
  }
};

TEST(IncrementalSolverTest, InsertionsResumeSemiNaive) {
  TcCase C;
  C.Edges = {{1, 2}, {2, 3}};
  Program P = C.build();
  IncrementalSolver IS(P);

  UpdateStats U0 = IS.update();
  ASSERT_TRUE(U0.ok());
  EXPECT_FALSE(U0.FullResolve); // initial solve, not a fallback
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(3)}));
  EXPECT_FALSE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(4)}));

  IS.addFact(C.Edge, {C.F.integer(3), C.F.integer(4)});
  EXPECT_EQ(IS.pendingMutations(), 1u);
  UpdateStats U1 = IS.update();
  ASSERT_TRUE(U1.ok());
  EXPECT_FALSE(U1.FullResolve);
  EXPECT_EQ(U1.FactsAdded, 1u);
  EXPECT_EQ(U1.CellsDeleted, 0u);
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(4)}));
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(2), C.F.integer(4)}));
  // 3 rule-derived cells: Path(3,4), Path(2,4), Path(1,4) — the inserted
  // Edge fact itself counts under FactsAdded, not FactsDerived.
  EXPECT_EQ(U1.FactsDerived, 3u);
}

TEST(IncrementalSolverTest, RetractionDeletesDerivedTuples) {
  TcCase C;
  C.Edges = {{1, 2}, {2, 3}, {3, 4}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  IS.retractFact(C.Edge, {C.F.integer(2), C.F.integer(3)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_FALSE(U.FullResolve);
  EXPECT_EQ(U.FactsRetracted, 1u);
  EXPECT_GT(U.CellsDeleted, 0u);
  EXPECT_FALSE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(3)}));
  EXPECT_FALSE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(4)}));
  EXPECT_FALSE(IS.contains(C.Path, {C.F.integer(2), C.F.integer(4)}));
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(2)}));
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(3), C.F.integer(4)}));
  C.Edges.erase({2, 3});
  expectMatchesScratch(IS, [&] { return C.build(); });
}

TEST(IncrementalSolverTest, AlternativeDerivationSurvivesRetraction) {
  // Path(1,3) is derivable through 2 and through 5; retracting one route
  // must keep it (over-delete kills it, re-derivation restores it).
  TcCase C;
  C.Edges = {{1, 2}, {2, 3}, {1, 5}, {5, 3}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  IS.retractFact(C.Edge, {C.F.integer(1), C.F.integer(2)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(3)}));
  EXPECT_FALSE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(2)}));
  // Whether Path(1,3) was over-deleted and re-derived or never deleted at
  // all depends on which route's join recorded the support edge (only
  // *changed* joins do) — both are sound; the model must match scratch.
  EXPECT_GT(U.CellsDeleted, 0u);
  C.Edges.erase({1, 2});
  expectMatchesScratch(IS, [&] { return C.build(); });
}

TEST(IncrementalSolverTest, RetractThenAddSameBatchNetsToPresent) {
  TcCase C;
  C.Edges = {{1, 2}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  // Within one batch retractions apply before additions.
  IS.retractFact(C.Edge, {C.F.integer(1), C.F.integer(2)});
  IS.addFact(C.Edge, {C.F.integer(1), C.F.integer(2)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_TRUE(IS.contains(C.Edge, {C.F.integer(1), C.F.integer(2)}));
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(2)}));
}

TEST(IncrementalSolverTest, UnknownRetractionAndDuplicateAddAreNoops) {
  TcCase C;
  C.Edges = {{1, 2}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  IS.retractFact(C.Edge, {C.F.integer(7), C.F.integer(8)});
  IS.addFact(C.Edge, {C.F.integer(1), C.F.integer(2)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_EQ(U.FactsRetracted, 0u);
  EXPECT_EQ(U.FactsAdded, 0u);
  EXPECT_EQ(U.CellsDeleted, 0u);
  EXPECT_EQ(U.FactsDerived, 0u);
  EXPECT_TRUE(IS.contains(C.Path, {C.F.integer(1), C.F.integer(2)}));
}

TEST(IncrementalSolverTest, SupportEdgesStayBoundedAcrossUpdateCycles) {
  // Both support-index writers (Solver::recordSupport and the
  // incremental rederive path) keep each cell's Dependents list
  // sorted-unique, so repeating the same add/retract churn must not grow
  // the index: re-deriving a cell through the same join re-records the
  // same edge, which is dropped as a duplicate. Without dedup this count
  // grows on every cycle.
  TcCase C;
  C.Edges = {{1, 2}, {2, 3}, {3, 4}, {4, 5}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  auto churn = [&] {
    IS.addFact(C.Edge, {C.F.integer(5), C.F.integer(6)});
    ASSERT_TRUE(IS.update().ok());
    IS.retractFact(C.Edge, {C.F.integer(5), C.F.integer(6)});
    ASSERT_TRUE(IS.update().ok());
  };
  churn();
  size_t Baseline = IS.solver().supportEdgeCount();
  ASSERT_GT(Baseline, 0u);

  for (int Cycle = 0; Cycle < 5; ++Cycle)
    churn();
  EXPECT_EQ(IS.solver().supportEdgeCount(), Baseline);
  expectMatchesScratch(IS, [&] { return C.build(); });
}

TEST(IncrementalSolverTest, EmptyUpdateIsTrivial) {
  TcCase C;
  C.Edges = {{1, 2}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_EQ(U.Iterations, 0u);
  EXPECT_EQ(U.RuleFirings, 0u);
}

//===----------------------------------------------------------------------===//
// Units: lattice retraction (shortest paths)
//===----------------------------------------------------------------------===//

struct SsspCase {
  ValueFactory F;
  MinCostLattice L{F};
  PredId Edge = 0, Dist = 0;
  FnId Add = 0;
  std::set<std::array<int, 3>> Edges;
  int Source = 0;

  Program build() {
    Program P(F);
    Edge = P.relation("Edge", 3);
    Dist = P.lattice("Dist", 2, &L);
    Add = P.function("addCost", 2, FnRole::Transfer,
                     [this](std::span<const Value> A) {
                       return L.addCost(A[0], A[1].asInt());
                     });
    RuleBuilder()
        .headFn(Dist, {rv("y")}, Add, {rv("d"), rv("c")})
        .atom(Dist, {"x", "d"})
        .atom(Edge, {"x", "y", "c"})
        .addTo(P);
    P.addLatFact(Dist, {F.integer(Source)}, L.cost(0));
    for (auto [A, B, W] : Edges)
      P.addFact(Edge, {F.integer(A), F.integer(B), F.integer(W)});
    return P;
  }

  int64_t dist(const IncrementalSolver &IS, int Node) {
    Value V = IS.latValue(Dist, {F.integer(Node)});
    return L.isInfinity(V) ? -1 : L.costValue(V);
  }
};

TEST(IncrementalSolverTest, LatticeRetractionRederivesLongerPath) {
  // The flixc example graph: retracting the cheap s->a edge reroutes a
  // through the cycle b -> c -> a.
  SsspCase C;
  C.Edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}, {3, 1, 1}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());
  EXPECT_EQ(C.dist(IS, 1), 1);
  EXPECT_EQ(C.dist(IS, 2), 3);
  EXPECT_EQ(C.dist(IS, 3), 4);

  IS.retractFact(C.Edge, {C.F.integer(0), C.F.integer(1), C.F.integer(1)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_FALSE(U.FullResolve);
  // Node 1's value must get *worse* — the lattice-hard direction a pure
  // re-join cannot produce.
  EXPECT_EQ(C.dist(IS, 1), 7); // 0->2 (5), 2->3 (1), 3->1 (1)
  EXPECT_EQ(C.dist(IS, 2), 5);
  EXPECT_EQ(C.dist(IS, 3), 6);
  EXPECT_EQ(C.dist(IS, 0), 0); // the seed fact survives

  C.Edges.erase({0, 1, 1});
  expectMatchesScratch(IS, [&] { return C.build(); });
}

TEST(IncrementalSolverTest, RetractingSeedFactEmptiesReachability) {
  SsspCase C;
  C.Edges = {{0, 1, 1}, {1, 2, 1}};
  Program P = C.build();
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  IS.retractLatFact(C.Dist, {C.F.integer(0)}, C.L.cost(0));
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_EQ(U.CellsDeleted, 3u);   // Dist(0), Dist(1), Dist(2)
  EXPECT_EQ(U.CellsRederived, 0u); // nothing derivable anymore
  EXPECT_EQ(C.dist(IS, 0), -1);
  EXPECT_EQ(C.dist(IS, 1), -1);
  EXPECT_EQ(C.dist(IS, 2), -1);
  EXPECT_TRUE(IS.tuples(C.Dist).empty());
}

TEST(IncrementalSolverTest, ProvenanceFollowsRederivedCell) {
  SsspCase C;
  C.Edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 5}, {2, 3, 1}, {3, 1, 1}};
  Program P = C.build();
  SolverOptions O;
  O.TrackProvenance = true;
  IncrementalSolver IS(P, O);
  ASSERT_TRUE(IS.update().ok());

  // Before: Dist(1) = 1 via the direct edge.
  const Derivation *D = IS.explain(C.Dist, {C.F.integer(1)});
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->RuleIndex, 0u);

  IS.retractFact(C.Edge, {C.F.integer(0), C.F.integer(1), C.F.integer(1)});
  ASSERT_TRUE(IS.update().ok());

  // After: the re-derived Dist(1) = 7 must carry a fresh rule derivation
  // whose premises exist in the current model (Dist(3) and the 3->1
  // edge), not the retracted route.
  D = IS.explain(C.Dist, {C.F.integer(1)});
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->RuleIndex, 0u);
  bool SawEdge31 = false;
  for (const Derivation::Premise &Pr : D->Premises) {
    if (Pr.Pred == C.Edge) {
      Value Want = C.F.tuple(
          {C.F.integer(3), C.F.integer(1), C.F.integer(1)});
      EXPECT_TRUE(Pr.Key == Want)
          << "stale premise " << C.F.toString(Pr.Key);
      SawEdge31 = Pr.Key == Want;
    }
  }
  EXPECT_TRUE(SawEdge31);
  std::string Tree = IS.explainString(C.Dist, {C.F.integer(1)});
  EXPECT_NE(Tree.find("= 7"), std::string::npos) << Tree;
  EXPECT_NE(Tree.find("rule #0"), std::string::npos) << Tree;

  // The seed fact still explains as a fact.
  Tree = IS.explainString(C.Dist, {C.F.integer(0)});
  EXPECT_NE(Tree.find("<- fact"), std::string::npos) << Tree;
}

//===----------------------------------------------------------------------===//
// Units: stratum-local DRed across negation
//===----------------------------------------------------------------------===//

struct NegCase {
  ValueFactory F;
  PredId Node = 0, Blocked = 0, Active = 0;

  Program build(const std::set<int> &Nodes, const std::set<int> &Block) {
    Program P(F);
    Node = P.relation("Node", 1);
    Blocked = P.relation("Blocked", 1);
    Active = P.relation("Active", 1);
    RuleBuilder()
        .head(Active, {"x"})
        .atom(Node, {"x"})
        .negated(Blocked, {"x"})
        .addTo(P);
    for (int N : Nodes)
      P.addFact(Node, {F.integer(N)});
    for (int B : Block)
      P.addFact(Blocked, {F.integer(B)});
    return P;
  }
};

TEST(IncrementalSolverTest, NegatedPredicateUpdatesStayIncremental) {
  // The old engine re-solved from scratch whenever a batch could reach a
  // negated predicate. Stratum-local DRed retires that escape hatch:
  // both directions of Blocked churn are patched in place, FullResolve
  // stays false and the negation fallback counter stays zero.
  NegCase C;
  std::set<int> Nodes = {1, 2, 3}, Block = {2};
  Program P = C.build(Nodes, Block);
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());
  EXPECT_TRUE(IS.contains(C.Active, {C.F.integer(1)}));
  EXPECT_FALSE(IS.contains(C.Active, {C.F.integer(2)}));

  // Adding to the negated predicate removes Active(3) — the non-monotone
  // direction: the key's negation support entry over-deletes the head.
  IS.addFact(C.Blocked, {C.F.integer(3)});
  UpdateStats U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_FALSE(U.FullResolve);
  EXPECT_EQ(U.NegationFallbacks, 0u);
  EXPECT_FALSE(IS.contains(C.Active, {C.F.integer(3)}));
  Block.insert(3);
  expectMatchesScratch(IS, [&] { return C.build(Nodes, Block); });

  // Retracting from it restores the tuple: the retired key drives the
  // rule through the now-true `!Blocked(2)`.
  IS.retractFact(C.Blocked, {C.F.integer(2)});
  U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_FALSE(U.FullResolve);
  EXPECT_EQ(U.NegationFallbacks, 0u);
  EXPECT_TRUE(IS.contains(C.Active, {C.F.integer(2)}));
  Block.erase(2);
  expectMatchesScratch(IS, [&] { return C.build(Nodes, Block); });

  // Positive-side updates were always incremental; still are.
  IS.addFact(C.Node, {C.F.integer(4)});
  U = IS.update();
  ASSERT_TRUE(U.ok());
  EXPECT_FALSE(U.FullResolve);
  EXPECT_TRUE(IS.contains(C.Active, {C.F.integer(4)}));
  EXPECT_EQ(IS.fallbackSolves(), 0u);
  EXPECT_EQ(IS.negationFallbacks(), 0u);
  EXPECT_EQ(IS.degradedRecoveries(), 0u);
}

TEST(IncrementalSolverTest, NegSupportEdgesStayBoundedAcrossUpdateCycles) {
  // The negation support index must not grow under repeated churn: a net
  // insert consumes the key's entry; the retract-side re-derivation
  // re-records it sorted-unique, so each cycle returns to the baseline.
  NegCase C;
  std::set<int> Nodes = {1, 2, 3, 4, 5}, Block = {2};
  Program P = C.build(Nodes, Block);
  IncrementalSolver IS(P);
  ASSERT_TRUE(IS.update().ok());

  auto churn = [&] {
    IS.addFact(C.Blocked, {C.F.integer(3)});
    ASSERT_TRUE(IS.update().ok());
    IS.retractFact(C.Blocked, {C.F.integer(3)});
    ASSERT_TRUE(IS.update().ok());
  };
  churn();
  size_t Baseline = IS.solver().negSupportEdgeCount();
  ASSERT_GT(Baseline, 0u);

  for (int Cycle = 0; Cycle < 5; ++Cycle)
    churn();
  EXPECT_EQ(IS.solver().negSupportEdgeCount(), Baseline);
  EXPECT_EQ(IS.negationFallbacks(), 0u);
  expectMatchesScratch(IS, [&] { return C.build(Nodes, Block); });
}

//===----------------------------------------------------------------------===//
// Randomized differentials
//===----------------------------------------------------------------------===//

class IncrementalDifferentialTest
    : public ::testing::TestWithParam<unsigned> {
protected:
  SolverOptions opts() const {
    SolverOptions O;
    O.NumThreads = GetParam();
    return O;
  }
};

TEST_P(IncrementalDifferentialTest, GraphShortestPaths) {
  WeightedGraph G = generateGraph(0xfeed ^ 42, 40, 2.0, 9);
  SsspCase C;
  for (const std::array<int, 3> &E : G.Edges)
    C.Edges.insert(E);

  Program P = C.build();
  IncrementalSolver IS(P, opts());
  ASSERT_TRUE(IS.update().ok());
  expectMatchesScratch(IS, [&] { return C.build(); });

  std::mt19937_64 Rng(7);
  for (int Round = 0; Round < 6; ++Round) {
    // Retract up to 3 random present edges...
    for (int K = 0; K < 3 && !C.Edges.empty(); ++K) {
      auto It = C.Edges.begin();
      std::advance(It, Rng() % C.Edges.size());
      auto [A, B, W] = *It;
      IS.retractFact(C.Edge,
                     {C.F.integer(A), C.F.integer(B), C.F.integer(W)});
      C.Edges.erase(It);
    }
    // ...and add up to 3 random new ones.
    for (int K = 0; K < 3; ++K) {
      std::array<int, 3> E = {int(Rng() % G.NumNodes),
                              int(Rng() % G.NumNodes),
                              int(1 + Rng() % 9)};
      if (!C.Edges.insert(E).second)
        continue;
      IS.addFact(C.Edge, {C.F.integer(E[0]), C.F.integer(E[1]),
                          C.F.integer(E[2])});
    }
    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    expectMatchesScratch(IS, [&] { return C.build(); });
  }
}

/// IFDS-style gen/kill reachability over a generated ICFG, with the Kill
/// relation under stratified negation:
///   Reach(n, d) :- Gen(n, d).
///   Reach(m, d) :- Reach(n, d), Cfg(n, m), !Kill(m, d).
struct IcfgCase {
  ValueFactory F;
  PredId Cfg = 0, Gen = 0, Kill = 0, Reach = 0;
  std::set<std::pair<int, int>> CfgE, GenE, KillE;

  Program build() {
    Program P(F);
    Cfg = P.relation("Cfg", 2);
    Gen = P.relation("Gen", 2);
    Kill = P.relation("Kill", 2);
    Reach = P.relation("Reach", 2);
    RuleBuilder().head(Reach, {"n", "d"}).atom(Gen, {"n", "d"}).addTo(P);
    RuleBuilder()
        .head(Reach, {"m", "d"})
        .atom(Reach, {"n", "d"})
        .atom(Cfg, {"n", "m"})
        .negated(Kill, {"m", "d"})
        .addTo(P);
    for (auto [A, B] : CfgE)
      P.addFact(Cfg, {F.integer(A), F.integer(B)});
    for (auto [N, D] : GenE)
      P.addFact(Gen, {F.integer(N), F.integer(D)});
    for (auto [N, D] : KillE)
      P.addFact(Kill, {F.integer(N), F.integer(D)});
    return P;
  }
};

TEST(IncrementalSolverTest, DeadlineAbortRecoversConsistently) {
  // A deadline that expires mid-batch aborts Phase D per matched row,
  // leaving a sound under-approximation plus possibly-stale negation
  // bookkeeping. The next update() must take a *degraded recovery* (not
  // a negation fallback), after which incremental updates — including
  // negated-predicate churn — must match scratch again.
  IcfgCase C;
  C.CfgE = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  C.GenE = {{0, 0}, {0, 1}};
  C.KillE = {{3, 1}};
  Program P = C.build();
  IncrementalSolver IS(P); // sequential: only it observes deadlines
  ASSERT_TRUE(IS.update().ok());

  // A batch that fires rules, run under an already-expired deadline: the
  // first per-row check aborts with Status::Timeout.
  IS.addFact(C.Gen, {C.F.integer(5), C.F.integer(2)});
  IS.addFact(C.Cfg, {C.F.integer(5), C.F.integer(0)});
  UpdateStats U = IS.update(Deadline::after(1e-9));
  ASSERT_FALSE(U.ok());
  EXPECT_EQ(U.St, SolveStats::Status::Timeout);
  EXPECT_EQ(U.DegradedRecoveries, 0u); // recovery happens on the *next* call
  C.GenE.insert({5, 2});
  C.CfgE.insert({5, 0});

  // Recovery: a from-scratch rebuild counted as a degraded recovery.
  UpdateStats U2 = IS.update();
  ASSERT_TRUE(U2.ok());
  EXPECT_TRUE(U2.FullResolve);
  EXPECT_EQ(U2.DegradedRecoveries, 1u);
  EXPECT_EQ(U2.NegationFallbacks, 0u);
  expectMatchesScratch(IS, [&] { return C.build(); });

  // Subsequent updates are incremental again — including the negated
  // predicate, whose support index and tombstone record the recovery
  // rebuilt from nothing.
  IS.retractFact(C.Kill, {C.F.integer(3), C.F.integer(1)});
  C.KillE.erase({3, 1});
  IS.addFact(C.Kill, {C.F.integer(2), C.F.integer(0)});
  C.KillE.insert({2, 0});
  UpdateStats U3 = IS.update();
  ASSERT_TRUE(U3.ok());
  EXPECT_FALSE(U3.FullResolve);
  EXPECT_EQ(U3.DegradedRecoveries, 1u);
  EXPECT_EQ(U3.NegationFallbacks, 0u);
  expectMatchesScratch(IS, [&] { return C.build(); });
}

TEST_P(IncrementalDifferentialTest, IcfgGenKillReachability) {
  IcfgProgram I = generateIcfg(99, 3, 10, 8, 2);
  IcfgCase C;
  for (auto [A, B] : I.CfgEdges)
    C.CfgE.insert({A, B});
  for (int N = 0; N < I.NumNodes; ++N) {
    for (int D : I.Flows[N].Gen)
      C.GenE.insert({N, D});
    for (int D : I.Flows[N].Kill)
      C.KillE.insert({N, D});
  }

  Program P = C.build();
  IncrementalSolver IS(P, opts());
  ASSERT_TRUE(IS.update().ok());
  expectMatchesScratch(IS, [&] { return C.build(); });

  std::mt19937_64 Rng(13);
  for (int Round = 0; Round < 5; ++Round) {
    for (int K = 0; K < 2 && !C.CfgE.empty(); ++K) {
      auto It = C.CfgE.begin();
      std::advance(It, Rng() % C.CfgE.size());
      IS.retractFact(C.Cfg,
                     {C.F.integer(It->first), C.F.integer(It->second)});
      C.CfgE.erase(It);
    }
    for (int K = 0; K < 2; ++K) {
      std::pair<int, int> E = {int(Rng() % I.NumNodes),
                               int(Rng() % I.NumNodes)};
      if (!C.CfgE.insert(E).second)
        continue;
      IS.addFact(C.Cfg, {C.F.integer(E.first), C.F.integer(E.second)});
    }
    std::pair<int, int> G = {int(Rng() % I.NumNodes),
                             int(Rng() % I.NumFacts)};
    if (C.GenE.insert(G).second)
      IS.addFact(C.Gen, {C.F.integer(G.first), C.F.integer(G.second)});

    // Churn the negated Kill relation in the same batch: stratum-local
    // DRed patches it in place alongside the Cfg/Gen changes.
    if (Round % 2 == 0) {
      std::pair<int, int> KM = {int(Rng() % I.NumNodes),
                                int(Rng() % I.NumFacts)};
      if (C.KillE.insert(KM).second)
        IS.addFact(C.Kill, {C.F.integer(KM.first), C.F.integer(KM.second)});
    } else if (!C.KillE.empty()) {
      auto It = C.KillE.begin();
      std::advance(It, Rng() % C.KillE.size());
      IS.retractFact(C.Kill,
                     {C.F.integer(It->first), C.F.integer(It->second)});
      C.KillE.erase(It);
    }

    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    EXPECT_EQ(U.NegationFallbacks, 0u);
    expectMatchesScratch(IS, [&] { return C.build(); });
  }

  // A Kill retraction on its own must also stay incremental: the retired
  // key drives re-derivation through the now-true negation.
  if (!C.KillE.empty()) {
    auto It = C.KillE.begin();
    IS.retractFact(C.Kill,
                   {C.F.integer(It->first), C.F.integer(It->second)});
    C.KillE.erase(It);
    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    expectMatchesScratch(IS, [&] { return C.build(); });
  }
  EXPECT_EQ(IS.negationFallbacks(), 0u);
}

/// Three strata with negation at both boundaries, the top one feeding a
/// lattice head:
///   stratum 0: Down(x) :- Fault(x).   Down(y) :- Down(x), Wire(x, y).
///   stratum 1: Up(x)   :- Node(x), !Down(x).
///   stratum 2: Dist(y) <- addCost(d, c) :- Dist(x, d), Link(x, y, c), !Up(y).
/// Fault churn ripples through two negation boundaries into min-cost
/// distances — the lattice-hard cascade for stratum-local DRed.
struct TriStratumCase {
  ValueFactory F;
  MinCostLattice L{F};
  PredId Fault = 0, Wire = 0, Node = 0, Link = 0, Down = 0, Up = 0, Dist = 0;
  FnId Add = 0;
  std::set<int> Faults, Nodes;
  std::set<std::pair<int, int>> Wires;
  std::set<std::array<int, 3>> Links;
  int Source = 0;

  Program build() {
    Program P(F);
    Fault = P.relation("Fault", 1);
    Wire = P.relation("Wire", 2);
    Node = P.relation("Node", 1);
    Link = P.relation("Link", 3);
    Down = P.relation("Down", 1);
    Up = P.relation("Up", 1);
    Dist = P.lattice("Dist", 2, &L);
    Add = P.function("addCost", 2, FnRole::Transfer,
                     [this](std::span<const Value> A) {
                       return L.addCost(A[0], A[1].asInt());
                     });
    RuleBuilder().head(Down, {"x"}).atom(Fault, {"x"}).addTo(P);
    RuleBuilder()
        .head(Down, {"y"})
        .atom(Down, {"x"})
        .atom(Wire, {"x", "y"})
        .addTo(P);
    RuleBuilder()
        .head(Up, {"x"})
        .atom(Node, {"x"})
        .negated(Down, {"x"})
        .addTo(P);
    RuleBuilder()
        .headFn(Dist, {rv("y")}, Add, {rv("d"), rv("c")})
        .atom(Dist, {"x", "d"})
        .atom(Link, {"x", "y", "c"})
        .negated(Up, {"y"})
        .addTo(P);
    P.addLatFact(Dist, {F.integer(Source)}, L.cost(0));
    for (int N : Nodes)
      P.addFact(Node, {F.integer(N)});
    for (int Ft : Faults)
      P.addFact(Fault, {F.integer(Ft)});
    for (auto [A, B] : Wires)
      P.addFact(Wire, {F.integer(A), F.integer(B)});
    for (auto [A, B, W] : Links)
      P.addFact(Link, {F.integer(A), F.integer(B), F.integer(W)});
    return P;
  }
};

TEST_P(IncrementalDifferentialTest, ThreeStratumNegationIntoLattice) {
  TriStratumCase C;
  std::mt19937_64 Rng(0xd1f ^ GetParam());
  const int N = 24;
  for (int I = 0; I < N; ++I)
    C.Nodes.insert(I);
  for (int I = 0; I < 30; ++I)
    C.Wires.insert({int(Rng() % N), int(Rng() % N)});
  for (int I = 0; I < 60; ++I)
    C.Links.insert({int(Rng() % N), int(Rng() % N), int(1 + Rng() % 9)});
  for (int I = 0; I < 4; ++I)
    C.Faults.insert(int(Rng() % N));

  Program P = C.build();
  IncrementalSolver IS(P, opts());
  ASSERT_TRUE(IS.update().ok());
  expectMatchesScratch(IS, [&] { return C.build(); });

  for (int Round = 0; Round < 6; ++Round) {
    // Fault churn: flips Down closure, which flips Up, which gates Dist.
    // Retract before add — a batch nets retract-then-add of one key to
    // present, matching the set bookkeeping below.
    if (!C.Faults.empty() && (Rng() & 1)) {
      auto It = C.Faults.begin();
      std::advance(It, Rng() % C.Faults.size());
      IS.retractFact(C.Fault, {C.F.integer(*It)});
      C.Faults.erase(It);
    }
    int FA = int(Rng() % N);
    if (C.Faults.insert(FA).second)
      IS.addFact(C.Fault, {C.F.integer(FA)});
    // Wire churn inside stratum 0: moves the Down frontier recursively.
    std::pair<int, int> W = {int(Rng() % N), int(Rng() % N)};
    if (C.Wires.insert(W).second) {
      IS.addFact(C.Wire, {C.F.integer(W.first), C.F.integer(W.second)});
    } else if (!C.Wires.empty()) {
      auto It = C.Wires.begin();
      std::advance(It, Rng() % C.Wires.size());
      IS.retractFact(C.Wire,
                     {C.F.integer(It->first), C.F.integer(It->second)});
      C.Wires.erase(It);
    }
    // Link churn in the lattice stratum itself.
    std::array<int, 3> Lk = {int(Rng() % N), int(Rng() % N),
                             int(1 + Rng() % 9)};
    if (C.Links.insert(Lk).second) {
      IS.addFact(C.Link, {C.F.integer(Lk[0]), C.F.integer(Lk[1]),
                          C.F.integer(Lk[2])});
    } else if (!C.Links.empty()) {
      auto It = C.Links.begin();
      std::advance(It, Rng() % C.Links.size());
      IS.retractFact(C.Link, {C.F.integer((*It)[0]), C.F.integer((*It)[1]),
                              C.F.integer((*It)[2])});
      C.Links.erase(It);
    }

    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    EXPECT_EQ(U.NegationFallbacks, 0u);
    expectMatchesScratch(IS, [&] { return C.build(); });
  }
  EXPECT_EQ(IS.negationFallbacks(), 0u);
}

/// Recursive Andersen-style points-to over generated pointer programs:
///   Pt(p, a)  :- AddrOf(p, a).
///   Pt(p, a)  :- Copy(p, q), Pt(q, a).
///   Pt(p, b)  :- Load(l, p, q), Pt(q, a), PtH(a, b).
///   PtH(a, b) :- Store(l, p, q), Pt(p, a), Pt(q, b).
struct PtCase {
  ValueFactory F;
  PredId AddrOf = 0, Copy = 0, Load = 0, Store = 0, Pt = 0, PtH = 0;
  std::set<std::pair<int, int>> AddrE, CopyE;
  std::vector<std::array<int, 3>> LoadE, StoreE;

  Program build() {
    Program P(F);
    AddrOf = P.relation("AddrOf", 2);
    Copy = P.relation("Copy", 2);
    Load = P.relation("Load", 3);
    Store = P.relation("Store", 3);
    Pt = P.relation("Pt", 2);
    PtH = P.relation("PtH", 2);
    RuleBuilder().head(Pt, {"p", "a"}).atom(AddrOf, {"p", "a"}).addTo(P);
    RuleBuilder()
        .head(Pt, {"p", "a"})
        .atom(Copy, {"p", "q"})
        .atom(Pt, {"q", "a"})
        .addTo(P);
    RuleBuilder()
        .head(Pt, {"p", "b"})
        .atom(Load, {"l", "p", "q"})
        .atom(Pt, {"q", "a"})
        .atom(PtH, {"a", "b"})
        .addTo(P);
    RuleBuilder()
        .head(PtH, {"a", "b"})
        .atom(Store, {"l", "p", "q"})
        .atom(Pt, {"p", "a"})
        .atom(Pt, {"q", "b"})
        .addTo(P);
    for (auto [A, B] : AddrE)
      P.addFact(AddrOf, {F.integer(A), F.integer(B)});
    for (auto [A, B] : CopyE)
      P.addFact(Copy, {F.integer(A), F.integer(B)});
    for (auto [L, A, B] : LoadE)
      P.addFact(Load, {F.integer(L), F.integer(A), F.integer(B)});
    for (auto [L, A, B] : StoreE)
      P.addFact(Store, {F.integer(L), F.integer(A), F.integer(B)});
    return P;
  }
};

TEST_P(IncrementalDifferentialTest, PointerAnalysis) {
  PointerProgram PP = generatePointerProgram(1234, 400);
  PtCase C;
  for (auto [P1, A] : PP.AddrOf)
    C.AddrE.insert({P1, A});
  for (auto [P1, Q] : PP.Copy)
    C.CopyE.insert({P1, Q});
  C.LoadE = PP.Load;
  C.StoreE = PP.Store;

  Program P = C.build();
  IncrementalSolver IS(P, opts());
  ASSERT_TRUE(IS.update().ok());
  expectMatchesScratch(IS, [&] { return C.build(); });

  std::mt19937_64 Rng(5);
  for (int Round = 0; Round < 4; ++Round) {
    for (int K = 0; K < 3 && !C.AddrE.empty(); ++K) {
      auto It = C.AddrE.begin();
      std::advance(It, Rng() % C.AddrE.size());
      IS.retractFact(C.AddrOf,
                     {C.F.integer(It->first), C.F.integer(It->second)});
      C.AddrE.erase(It);
    }
    for (int K = 0; K < 2 && !C.CopyE.empty(); ++K) {
      auto It = C.CopyE.begin();
      std::advance(It, Rng() % C.CopyE.size());
      IS.retractFact(C.Copy,
                     {C.F.integer(It->first), C.F.integer(It->second)});
      C.CopyE.erase(It);
    }
    for (int K = 0; K < 3; ++K) {
      std::pair<int, int> E = {int(Rng() % PP.NumVars),
                               int(Rng() % PP.NumObjs)};
      if (!C.AddrE.insert(E).second)
        continue;
      IS.addFact(C.AddrOf, {C.F.integer(E.first), C.F.integer(E.second)});
    }
    std::pair<int, int> E = {int(Rng() % PP.NumVars),
                             int(Rng() % PP.NumVars)};
    if (C.CopyE.insert(E).second)
      IS.addFact(C.Copy, {C.F.integer(E.first), C.F.integer(E.second)});

    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    expectMatchesScratch(IS, [&] { return C.build(); });
  }
}

TEST_P(IncrementalDifferentialTest, AdaptiveReplanMidStream) {
  // Cost-based adaptive planning during an update stream: ReplanThreshold
  // 1.0 re-plans on any strict estimated improvement, so the growth phase
  // below (Reach outgrows Cfg by orders of magnitude) forces plan swaps
  // *between* DRed delta rounds. The differential then checks the two
  // structures a mid-stream re-plan could silently corrupt: the negation
  // support index / NegDependents (a Kill insert after the re-plan must
  // retract exactly the recorded heads) and the rederive family's
  // head-bound plans (retractions after the re-plan must re-derive
  // through the replaced plans).
  SolverOptions O = opts();
  O.ReplanThreshold = 1.0;

  IcfgCase C;
  C.CfgE = {{0, 1}, {1, 2}};
  C.GenE = {{0, 0}};
  C.KillE = {{2, 0}};
  Program P = C.build();
  IncrementalSolver IS(P, O);
  ASSERT_TRUE(IS.update().ok());
  expectMatchesScratch(IS, [&] { return C.build(); });

  uint64_t TotalReplans = 0;
  std::mt19937_64 Rng(17);
  for (int Round = 0; Round < 6; ++Round) {
    // Growth phase: bulk-insert Cfg edges and Gen facts so live-row
    // statistics drift far from what the last plan was chosen against.
    for (int K = 0; K < 40; ++K)
      C.CfgE.insert({int(Rng() % 64), int(Rng() % 64)});
    for (auto [A, B] : C.CfgE)
      IS.addFact(C.Cfg, {C.F.integer(A), C.F.integer(B)});
    for (int K = 0; K < 4; ++K)
      C.GenE.insert({int(Rng() % 64), int(Rng() % 8)});
    for (auto [N, D] : C.GenE)
      IS.addFact(C.Gen, {C.F.integer(N), C.F.integer(D)});
    // Churn the negated predicate across the (possible) re-plan.
    for (int K = 0; K < 2 && !C.KillE.empty(); ++K) {
      auto It = C.KillE.begin();
      std::advance(It, Rng() % C.KillE.size());
      IS.retractFact(C.Kill, {C.F.integer(It->first), C.F.integer(It->second)});
      C.KillE.erase(It);
    }
    for (int K = 0; K < 3; ++K) {
      std::pair<int, int> E = {int(Rng() % 64), int(Rng() % 8)};
      if (C.KillE.insert(E).second)
        IS.addFact(C.Kill, {C.F.integer(E.first), C.F.integer(E.second)});
    }
    UpdateStats U = IS.update();
    ASSERT_TRUE(U.ok());
    EXPECT_FALSE(U.FullResolve);
    EXPECT_EQ(U.NegationFallbacks, 0u);
    TotalReplans += U.ReplanEvents;
    expectMatchesScratch(IS, [&] { return C.build(); });
  }
  // The growth phase is sized to actually flip plans; a zero here means
  // the adaptive path went dead and this test stopped testing it.
  EXPECT_GT(TotalReplans, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalDifferentialTest,
                         ::testing::Values(0u, 1u, 8u),
                         [](const auto &Info) {
                           return "threads" + std::to_string(Info.param);
                         });

} // namespace
