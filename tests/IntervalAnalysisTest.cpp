//===- tests/IntervalAnalysisTest.cpp - interval dataflow end to end -------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// A flow-sensitive interval range analysis through the engine. The
/// interval lattice has clamped endpoints, giving the finite height the
/// paper's termination argument requires (§3.2): a counting loop
/// converges to the clamp instead of diverging.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

class IntervalAnalysisTest : public ::testing::Test {
protected:
  static constexpr int64_t Bound = 8;

  void build(Program &P, IntervalLattice &L) {
    Cfg = P.relation("CFG", 2);
    Inc = P.relation("Inc", 2);     // (label, var): v := v + 1 at label
    Assigns = P.relation("Assigns", 2);
    Range = P.lattice("Range", 3, &L); // (label, var) -> interval
    FnId IncFn = P.function("inc", 1, FnRole::Transfer,
                            [&L](std::span<const Value> A) {
                              if (A[0] == L.bot())
                                return L.bot();
                              return L.sum(A[0], L.singleton(1));
                            });
    // Propagate unchanged vars along CFG edges.
    RuleBuilder()
        .head(Range, {"l2", "v", "r"})
        .atom(Cfg, {"l1", "l2"})
        .atom(Range, {"l1", "v", "r"})
        .negated(Assigns, {"l2", "v"})
        .addTo(P);
    // Increment statements transform the incoming range.
    RuleBuilder()
        .headFn(Range, {"l2", "v"}, IncFn, {"r"})
        .atom(Cfg, {"l1", "l2"})
        .atom(Inc, {"l2", "v"})
        .atom(Range, {"l1", "v", "r"})
        .addTo(P);
  }

  PredId Cfg = 0, Inc = 0, Assigns = 0, Range = 0;
};

TEST_F(IntervalAnalysisTest, CountingLoopConvergesToClamp) {
  // l0: i := 0;  l1: loop head;  l2: i := i + 1 -> l1;  l1 -> l3 (exit)
  ValueFactory F;
  IntervalLattice L(F, Bound);
  Program P(F);
  build(P, L);
  auto N = [&](int I) { return F.integer(I); };
  Value VarI = F.string("i");
  P.addFact(Cfg, {N(0), N(1)});
  P.addFact(Cfg, {N(1), N(2)});
  P.addFact(Cfg, {N(2), N(1)});
  P.addFact(Cfg, {N(1), N(3)});
  P.addFact(Inc, {N(2), VarI});
  P.addFact(Assigns, {N(2), VarI});
  P.addLatFact(Range, {N(0), VarI}, L.singleton(0));

  Solver S(P);
  SolveStats St = S.solve();
  ASSERT_TRUE(St.ok()) << St.Error;
  // The loop head joins [0,0] with ever-wider increments until the clamp:
  // i ∈ [0, Bound] — finite height makes the loop terminate.
  EXPECT_EQ(S.latValue(Range, {N(1), VarI}), L.range(0, Bound));
  EXPECT_EQ(S.latValue(Range, {N(3), VarI}), L.range(0, Bound));
  // Inside the body i has been incremented at least once.
  EXPECT_EQ(S.latValue(Range, {N(2), VarI}), L.range(1, Bound));
}

TEST_F(IntervalAnalysisTest, StraightLineStaysExact) {
  // Without a loop the analysis is exact: l0: i := 3; l1: i := i + 1.
  ValueFactory F;
  IntervalLattice L(F, Bound);
  Program P(F);
  build(P, L);
  auto N = [&](int I) { return F.integer(I); };
  Value VarI = F.string("i");
  P.addFact(Cfg, {N(0), N(1)});
  P.addFact(Inc, {N(1), VarI});
  P.addFact(Assigns, {N(1), VarI});
  P.addLatFact(Range, {N(0), VarI}, L.singleton(3));
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(Range, {N(1), VarI}), L.singleton(4));
}

TEST_F(IntervalAnalysisTest, BranchJoinWidensToHull) {
  // Diamond: i := 1 on one arm, i := 5 on the other; the join is [1,5].
  ValueFactory F;
  IntervalLattice L(F, Bound);
  Program P(F);
  build(P, L);
  auto N = [&](int I) { return F.integer(I); };
  Value VarI = F.string("i");
  // 0 -> {1, 2} -> 3; arms assign i.
  P.addFact(Cfg, {N(1), N(3)});
  P.addFact(Cfg, {N(2), N(3)});
  P.addLatFact(Range, {N(1), VarI}, L.singleton(1));
  P.addLatFact(Range, {N(2), VarI}, L.singleton(5));
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(Range, {N(3), VarI}), L.range(1, 5));
}

TEST(IntervalSoundnessTest, AbstractSumContainsConcreteSum) {
  ValueFactory F;
  IntervalLattice L(F, 64);
  for (int64_t ALo = -3; ALo <= 3; ++ALo)
    for (int64_t AHi = ALo; AHi <= ALo + 2; ++AHi)
      for (int64_t BLo = -3; BLo <= 3; ++BLo)
        for (int64_t BHi = BLo; BHi <= BLo + 2; ++BHi) {
          Value Sum = L.sum(L.range(ALo, AHi), L.range(BLo, BHi));
          for (int64_t A = ALo; A <= AHi; ++A)
            for (int64_t B = BLo; B <= BHi; ++B)
              EXPECT_TRUE(L.leq(L.singleton(A + B), Sum))
                  << A << "+" << B << " not in sum of [" << ALo << ","
                  << AHi << "] and [" << BLo << "," << BHi << "]";
        }
}

} // namespace
