//===- tests/LatticeCheckTest.cpp - lattice-law checker tests --------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Negative tests for the §7 "Safety" extension: the checker must *catch*
/// malformed lattices and non-monotone functions, not just bless correct
/// ones, including user-written FLIX lattices through the compiler.
///
//===----------------------------------------------------------------------===//

#include "lang/Compiler.h"
#include "runtime/LatticeCheck.h"
#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

/// A deliberately broken "lattice": lub returns its left argument, so it
/// is not an upper bound of the right one.
class BrokenLubLattice final : public Lattice {
public:
  explicit BrokenLubLattice(ValueFactory &F)
      : Bot(F.tag("B.Bot")), Mid1(F.tag("B.M1")), Mid2(F.tag("B.M2")),
        Top(F.tag("B.Top")) {}
  std::string name() const override { return "BrokenLub"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override {
    return A == Bot || B == Top || A == B;
  }
  Value lub(Value A, Value B) const override {
    return A == Bot ? B : A; // WRONG: ignores B
  }
  Value glb(Value A, Value B) const override {
    if (A == Top)
      return B;
    if (B == Top)
      return A;
    return A == B ? A : Bot;
  }
  Value Bot, Mid1, Mid2, Top;
};

/// A "lattice" whose order is not antisymmetric: two distinct elements
/// below each other.
class NotAntisymmetric final : public Lattice {
public:
  explicit NotAntisymmetric(ValueFactory &F)
      : Bot(F.tag("N.Bot")), A(F.tag("N.A")), B(F.tag("N.B")),
        Top(F.tag("N.Top")) {}
  std::string name() const override { return "NotAntisymmetric"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value X, Value Y) const override {
    if (X == Bot || Y == Top || X == Y)
      return true;
    // A ⊑ B and B ⊑ A although A != B.
    return (X == A && Y == B) || (X == B && Y == A);
  }
  Value lub(Value X, Value Y) const override {
    if (X == Bot)
      return Y;
    if (Y == Bot)
      return X;
    return X == Y ? X : Top;
  }
  Value glb(Value X, Value Y) const override {
    if (X == Top)
      return Y;
    if (Y == Top)
      return X;
    return X == Y ? X : Bot;
  }
  Value Bot, A, B, Top;
};

TEST(LatticeCheckTest, DetectsBrokenLub) {
  ValueFactory F;
  BrokenLubLattice L(F);
  std::vector<Value> Sample = {L.Mid1, L.Mid2};
  LatticeCheckResult R = checkLatticeLaws(L, F, Sample);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.summary().find("upper bound"), std::string::npos);
}

TEST(LatticeCheckTest, DetectsNonAntisymmetricOrder) {
  ValueFactory F;
  NotAntisymmetric L(F);
  std::vector<Value> Sample = {L.A, L.B};
  LatticeCheckResult R = checkLatticeLaws(L, F, Sample);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.summary().find("antisymmetry"), std::string::npos);
}

TEST(LatticeCheckTest, DetectsNonMonotoneFunction) {
  ValueFactory F;
  ParityLattice L(F);
  // "negate maybe-zero-ness": decreasing in its argument.
  auto Fn = [&](std::span<const Value> A) {
    return A[0] == L.top() ? L.bot() : L.top();
  };
  std::vector<Value> Sample = {L.odd(), L.even()};
  LatticeCheckResult R = checkMonotone(L, L, F, 1, Fn, Sample,
                                       /*RequireStrict=*/false, "antifn");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.summary().find("not monotone"), std::string::npos);
}

TEST(LatticeCheckTest, DetectsNonStrictFunction) {
  ValueFactory F;
  ParityLattice L(F);
  // Constant function: monotone but not strict.
  auto Fn = [&](std::span<const Value>) { return L.odd(); };
  std::vector<Value> Sample = {L.odd(), L.even()};
  LatticeCheckResult R = checkMonotone(L, L, F, 1, Fn, Sample,
                                       /*RequireStrict=*/true, "constfn");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.summary().find("not strict"), std::string::npos);
  // Without the strictness requirement it is fine.
  LatticeCheckResult R2 = checkMonotone(L, L, F, 1, Fn, Sample, false,
                                        "constfn");
  EXPECT_TRUE(R2.ok()) << R2.summary();
}

TEST(LatticeCheckTest, DetectsNonMonotoneFilter) {
  ValueFactory F;
  ParityLattice L(F);
  // isDefinitelyOdd is *anti*monotone: true at Odd, false at Top ⊒ Odd.
  auto Fn = [&](std::span<const Value> A) { return A[0] == L.odd(); };
  std::vector<Value> Sample = {L.odd(), L.even()};
  LatticeCheckResult R =
      checkMonotoneFilter(L, F, 1, Fn, Sample, "isDefinitelyOdd");
  EXPECT_FALSE(R.ok());
}

TEST(LatticeCheckTest, AcceptsBinaryMonotoneFunctions) {
  ValueFactory F;
  SignLattice L(F);
  auto Fn = [&](std::span<const Value> A) { return L.sum(A[0], A[1]); };
  std::vector<Value> Sample = {L.neg(), L.zer(), L.pos()};
  LatticeCheckResult R =
      checkMonotone(L, L, F, 2, Fn, Sample, /*RequireStrict=*/true, "sum");
  EXPECT_TRUE(R.ok()) << R.summary();
}

TEST(LatticeCheckTest, ChecksUserWrittenFlixLattice) {
  // A user-written FLIX "lattice" with a wrong lub (returns Bot for
  // incomparable elements): the checker catches it through the compiled
  // InterpretedLattice.
  const char *Src = R"flix(
enum P { case Top, case Even, case Odd, case Bot }
def leq(e1: P, e2: P): Bool = match (e1, e2) with {
  case (P.Bot, _) => true
  case (P.Even, P.Even) => true
  case (P.Odd, P.Odd) => true
  case (_, P.Top) => true
  case _ => false
}
def lub(e1: P, e2: P): P = match (e1, e2) with {
  case (P.Bot, x) => x
  case (x, P.Bot) => x
  case (P.Even, P.Even) => P.Even
  case (P.Odd, P.Odd) => P.Odd
  case _ => P.Bot
}
def glb(e1: P, e2: P): P = match (e1, e2) with {
  case (P.Top, x) => x
  case (x, P.Top) => x
  case (P.Even, P.Even) => P.Even
  case (P.Odd, P.Odd) => P.Odd
  case _ => P.Bot
}
let P<> = (P.Bot, P.Top, leq, lub, glb);
lat L(k: Str, P<>);
)flix";
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile(Src)) << C.diagnostics();
  // Fish the lattice out of the compiled program.
  auto L = C.predicate("L");
  ASSERT_TRUE(L.has_value());
  const Lattice *Lat = C.program().predicate(*L).Lat;
  ASSERT_NE(Lat, nullptr);
  std::vector<Value> Sample = {F.tag("P.Even"), F.tag("P.Odd")};
  LatticeCheckResult R = checkLatticeLaws(*Lat, F, Sample);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.summary().find("upper bound"), std::string::npos);
}

} // namespace
