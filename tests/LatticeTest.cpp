//===- tests/LatticeTest.cpp - Built-in lattice tests ---------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "runtime/LatticeCheck.h"
#include "runtime/Lattices.h"

#include <gtest/gtest.h>

#include <memory>

using namespace flix;

namespace {

/// A lattice under test together with a representative element sample.
struct LatticeEnv {
  std::unique_ptr<ValueFactory> F = std::make_unique<ValueFactory>();
  std::unique_ptr<ConstantLattice> CL; // substrate for Transformer
  std::unique_ptr<Lattice> L;
  std::vector<Value> Sample;
};

LatticeEnv makeEnv(const std::string &Name) {
  LatticeEnv E;
  ValueFactory &F = *E.F;
  if (Name == "Bool") {
    E.L = std::make_unique<BoolLattice>(F);
  } else if (Name == "Parity") {
    auto L = std::make_unique<ParityLattice>(F);
    E.Sample = {L->odd(), L->even()};
    E.L = std::move(L);
  } else if (Name == "Sign") {
    auto L = std::make_unique<SignLattice>(F);
    E.Sample = {L->neg(), L->zer(), L->pos()};
    E.L = std::move(L);
  } else if (Name == "Constant") {
    auto L = std::make_unique<ConstantLattice>(F);
    E.Sample = {L->constant(-1), L->constant(0), L->constant(1),
                L->constant(7)};
    E.L = std::move(L);
  } else if (Name == "Interval") {
    auto L = std::make_unique<IntervalLattice>(F, 16);
    E.Sample = {L->singleton(0), L->singleton(3), L->range(-2, 5),
                L->range(0, 16), L->range(-16, -1)};
    E.L = std::move(L);
  } else if (Name == "SU") {
    auto L = std::make_unique<SULattice>(F);
    E.Sample = {L->single(F.string("p")), L->single(F.string("q"))};
    E.L = std::move(L);
  } else if (Name == "MinCost") {
    auto L = std::make_unique<MinCostLattice>(F);
    E.Sample = {L->cost(1), L->cost(5), L->cost(100)};
    E.L = std::move(L);
  } else if (Name == "Powerset") {
    std::vector<Value> Univ = {F.string("a"), F.string("b"), F.string("c")};
    auto L = std::make_unique<PowersetLattice>(F, Univ);
    E.Sample = {F.set({Univ[0]}), F.set({Univ[1]}), F.set({Univ[0], Univ[2]}),
                F.set({Univ[1], Univ[2]})};
    E.L = std::move(L);
  } else if (Name == "Transformer") {
    E.CL = std::make_unique<ConstantLattice>(F);
    auto L = std::make_unique<TransformerLattice>(F, *E.CL);
    E.Sample = {L->identity(), L->nonBot(1, 0, E.CL->constant(3)),
                L->nonBot(2, 1, E.CL->bot()), L->nonBot(0, 5, E.CL->bot()),
                L->nonBot(0, 5, E.CL->top()),
                L->nonBot(2, 1, E.CL->constant(4))};
    E.L = std::move(L);
  }
  return E;
}

class LatticeLawTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LatticeLawTest, SatisfiesCompleteLatticeLaws) {
  LatticeEnv E = makeEnv(GetParam());
  ASSERT_NE(E.L, nullptr) << "unknown lattice " << GetParam();
  LatticeCheckResult R = checkLatticeLaws(*E.L, *E.F, E.Sample);
  EXPECT_TRUE(R.ok()) << GetParam() << ": " << R.summary();
}

INSTANTIATE_TEST_SUITE_P(AllLattices, LatticeLawTest,
                         ::testing::Values("Bool", "Parity", "Sign",
                                           "Constant", "Interval", "SU",
                                           "MinCost", "Powerset",
                                           "Transformer"),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Parity
//===----------------------------------------------------------------------===//

class ParityTest : public ::testing::Test {
protected:
  ValueFactory F;
  ParityLattice L{F};
};

TEST_F(ParityTest, Alpha) {
  EXPECT_EQ(L.alpha(4), L.even());
  EXPECT_EQ(L.alpha(7), L.odd());
  EXPECT_EQ(L.alpha(0), L.even());
}

TEST_F(ParityTest, AbstractSumSoundOnSamples) {
  // γ(sum(α(a), α(b))) must contain a + b.
  for (int64_t A = -5; A <= 5; ++A)
    for (int64_t B = -5; B <= 5; ++B) {
      Value S = L.sum(L.alpha(A), L.alpha(B));
      EXPECT_TRUE(S == L.alpha(A + B) || S == L.top());
      EXPECT_EQ(S, L.alpha(A + B)); // parity sum is exact
    }
}

TEST_F(ParityTest, SumStrictAndTopAbsorbing) {
  EXPECT_EQ(L.sum(L.bot(), L.odd()), L.bot());
  EXPECT_EQ(L.sum(L.top(), L.odd()), L.top());
}

TEST_F(ParityTest, ProductSoundOnSamples) {
  for (int64_t A = -4; A <= 4; ++A)
    for (int64_t B = -4; B <= 4; ++B) {
      Value Prod = L.product(L.alpha(A), L.alpha(B));
      EXPECT_TRUE(L.leq(L.alpha(A * B), Prod));
    }
  // even * top is still even.
  EXPECT_EQ(L.product(L.even(), L.top()), L.even());
}

TEST_F(ParityTest, IsMaybeZeroFilter) {
  EXPECT_TRUE(L.isMaybeZero(L.even()));
  EXPECT_TRUE(L.isMaybeZero(L.top()));
  EXPECT_FALSE(L.isMaybeZero(L.odd()));
  EXPECT_FALSE(L.isMaybeZero(L.bot()));
}

TEST_F(ParityTest, SumIsMonotoneAndStrict) {
  std::vector<Value> Sample = {L.odd(), L.even()};
  auto Fn = [&](std::span<const Value> A) { return L.sum(A[0], A[1]); };
  LatticeCheckResult R =
      checkMonotone(L, L, F, 2, Fn, Sample, /*RequireStrict=*/true, "sum");
  EXPECT_TRUE(R.ok()) << R.summary();
}

TEST_F(ParityTest, IsMaybeZeroIsMonotoneFilter) {
  std::vector<Value> Sample = {L.odd(), L.even()};
  auto Fn = [&](std::span<const Value> A) { return L.isMaybeZero(A[0]); };
  LatticeCheckResult R = checkMonotoneFilter(L, F, 1, Fn, Sample, "isMaybeZero");
  EXPECT_TRUE(R.ok()) << R.summary();
}

//===----------------------------------------------------------------------===//
// Sign
//===----------------------------------------------------------------------===//

class SignTest : public ::testing::Test {
protected:
  ValueFactory F;
  SignLattice L{F};
};

TEST_F(SignTest, SumRules) {
  EXPECT_EQ(L.sum(L.pos(), L.pos()), L.pos());
  EXPECT_EQ(L.sum(L.neg(), L.neg()), L.neg());
  EXPECT_EQ(L.sum(L.pos(), L.neg()), L.top());
  EXPECT_EQ(L.sum(L.zer(), L.pos()), L.pos());
  EXPECT_EQ(L.sum(L.bot(), L.pos()), L.bot());
}

TEST_F(SignTest, PaperJoinExample) {
  // §3.2: A(1, Pos). A(2, Pos). A(2, Neg). — cell 2 joins to Top.
  EXPECT_EQ(L.lub(L.pos(), L.neg()), L.top());
  EXPECT_EQ(L.lub(L.pos(), L.pos()), L.pos());
}

//===----------------------------------------------------------------------===//
// Constant
//===----------------------------------------------------------------------===//

class ConstantTest : public ::testing::Test {
protected:
  ValueFactory F;
  ConstantLattice L{F};
};

TEST_F(ConstantTest, FlatOrder) {
  EXPECT_TRUE(L.leq(L.constant(3), L.constant(3)));
  EXPECT_FALSE(L.leq(L.constant(3), L.constant(4)));
  EXPECT_TRUE(L.leq(L.bot(), L.constant(3)));
  EXPECT_TRUE(L.leq(L.constant(3), L.top()));
}

TEST_F(ConstantTest, Arithmetic) {
  EXPECT_EQ(L.sum(L.constant(2), L.constant(3)), L.constant(5));
  EXPECT_EQ(L.product(L.constant(2), L.constant(3)), L.constant(6));
  EXPECT_EQ(L.sum(L.top(), L.constant(3)), L.top());
  EXPECT_EQ(L.sum(L.bot(), L.top()), L.bot()); // strict
  // 0 times anything known-zero-side is 0.
  EXPECT_EQ(L.product(L.constant(0), L.top()), L.constant(0));
}

TEST_F(ConstantTest, MaybeZero) {
  EXPECT_TRUE(L.isMaybeZero(L.constant(0)));
  EXPECT_TRUE(L.isMaybeZero(L.top()));
  EXPECT_FALSE(L.isMaybeZero(L.constant(1)));
  EXPECT_FALSE(L.isMaybeZero(L.bot()));
}

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

class IntervalTest : public ::testing::Test {
protected:
  ValueFactory F;
  IntervalLattice L{F, 100};
};

TEST_F(IntervalTest, ContainmentOrder) {
  EXPECT_TRUE(L.leq(L.range(1, 2), L.range(0, 5)));
  EXPECT_FALSE(L.leq(L.range(0, 5), L.range(1, 2)));
  EXPECT_TRUE(L.leq(L.bot(), L.range(0, 0)));
}

TEST_F(IntervalTest, LubIsHull) {
  EXPECT_EQ(L.lub(L.range(0, 1), L.range(4, 5)), L.range(0, 5));
}

TEST_F(IntervalTest, GlbIsIntersection) {
  EXPECT_EQ(L.glb(L.range(0, 4), L.range(2, 8)), L.range(2, 4));
  EXPECT_EQ(L.glb(L.range(0, 1), L.range(3, 4)), L.bot());
}

TEST_F(IntervalTest, ClampingBoundsHeight) {
  EXPECT_EQ(L.range(-1000, 1000), L.top());
  EXPECT_EQ(L.sum(L.range(90, 90), L.range(20, 20)), L.range(100, 100));
}

TEST_F(IntervalTest, MaybeZero) {
  EXPECT_TRUE(L.isMaybeZero(L.range(-1, 1)));
  EXPECT_FALSE(L.isMaybeZero(L.range(1, 5)));
  EXPECT_FALSE(L.isMaybeZero(L.bot()));
}

//===----------------------------------------------------------------------===//
// SULattice
//===----------------------------------------------------------------------===//

class SUTest : public ::testing::Test {
protected:
  ValueFactory F;
  SULattice L{F};
};

TEST_F(SUTest, SingletonJoin) {
  Value P = L.single(F.string("p")), Q = L.single(F.string("q"));
  EXPECT_EQ(L.lub(P, P), P);
  EXPECT_EQ(L.lub(P, Q), L.top());
  EXPECT_EQ(L.lub(L.bot(), P), P);
}

TEST_F(SUTest, FilterSemantics) {
  // Figure 4: Bottom => false; Single(p) => b == p; Top => true.
  Value P = F.string("p"), Q = F.string("q");
  EXPECT_FALSE(L.filter(L.bot(), P));
  EXPECT_TRUE(L.filter(L.single(P), P));
  EXPECT_FALSE(L.filter(L.single(P), Q));
  EXPECT_TRUE(L.filter(L.top(), P));
}

//===----------------------------------------------------------------------===//
// MinCost
//===----------------------------------------------------------------------===//

class MinCostTest : public ::testing::Test {
protected:
  ValueFactory F;
  MinCostLattice L{F};
};

TEST_F(MinCostTest, ReversedOrder) {
  // §4.4: (N, ∞, 0, ≥, min, max): bigger costs are lower.
  EXPECT_TRUE(L.leq(L.cost(10), L.cost(3)));
  EXPECT_FALSE(L.leq(L.cost(3), L.cost(10)));
  EXPECT_TRUE(L.leq(L.infinity(), L.cost(1000)));
  EXPECT_EQ(L.bot(), L.infinity());
  EXPECT_EQ(L.top(), L.cost(0));
}

TEST_F(MinCostTest, LubIsMin) {
  EXPECT_EQ(L.lub(L.cost(3), L.cost(7)), L.cost(3));
  EXPECT_EQ(L.lub(L.infinity(), L.cost(7)), L.cost(7));
  EXPECT_EQ(L.glb(L.cost(3), L.cost(7)), L.cost(7));
}

TEST_F(MinCostTest, AddCostSaturatesAtInfinity) {
  EXPECT_EQ(L.addCost(L.cost(3), 4), L.cost(7));
  EXPECT_EQ(L.addCost(L.infinity(), 4), L.infinity());
}

//===----------------------------------------------------------------------===//
// Transformer (IDE micro-functions)
//===----------------------------------------------------------------------===//

class TransformerTest : public ::testing::Test {
protected:
  ValueFactory F;
  ConstantLattice CL{F};
  TransformerLattice L{F, CL};
};

TEST_F(TransformerTest, IdentityApplies) {
  EXPECT_EQ(L.apply(L.identity(), CL.constant(5)), CL.constant(5));
  EXPECT_EQ(L.apply(L.identity(), CL.top()), CL.top());
  EXPECT_EQ(L.apply(L.identity(), CL.bot()), CL.bot());
}

TEST_F(TransformerTest, BotTransformerKillsEverything) {
  EXPECT_EQ(L.apply(L.bot(), CL.constant(5)), CL.bot());
  EXPECT_EQ(L.apply(L.bot(), CL.top()), CL.bot());
}

TEST_F(TransformerTest, LinearApplication) {
  // λl. 2l + 1
  Value T = L.nonBot(2, 1, CL.bot());
  EXPECT_EQ(L.apply(T, CL.constant(3)), CL.constant(7));
  EXPECT_EQ(L.apply(T, CL.top()), CL.top());
}

TEST_F(TransformerTest, ConstantFunction) {
  // λl. 5 regardless of l.
  Value T = L.nonBot(0, 5, CL.bot());
  EXPECT_EQ(L.apply(T, CL.constant(9)), CL.constant(5));
  EXPECT_EQ(L.apply(T, CL.top()), CL.constant(5));
}

TEST_F(TransformerTest, CompositionMatchesPointwiseApplication) {
  // comp(T1, T2) applies T1 first (Figure 7).
  Value T1 = L.nonBot(2, 1, CL.bot()); // λl. 2l+1
  Value T2 = L.nonBot(3, 0, CL.bot()); // λl. 3l
  Value C = L.comp(T1, T2);            // λl. 3(2l+1) = 6l+3
  for (int64_t X : {-2, 0, 1, 5})
    EXPECT_EQ(L.apply(C, CL.constant(X)),
              L.apply(T2, L.apply(T1, CL.constant(X))));
  EXPECT_EQ(L.apply(C, CL.constant(1)), CL.constant(9));
}

TEST_F(TransformerTest, CompositionWithBot) {
  Value T = L.nonBot(2, 1, CL.bot());
  EXPECT_EQ(L.comp(T, L.bot()), L.bot());
  // Bot into λl.2l+1 (strict linear part, bot constant part) is Bot.
  EXPECT_EQ(L.comp(L.bot(), T), L.bot());
  // Bot into λl.(2l+1) ⊔ 4 is the constant-4 function.
  Value U = L.nonBot(2, 1, CL.constant(4));
  EXPECT_EQ(L.comp(L.bot(), U), L.nonBot(0, 4, CL.constant(4)));
}

TEST_F(TransformerTest, CompositionAssociativityOnSamples) {
  std::vector<Value> Ts = {L.bot(), L.identity(), L.nonBot(2, 1, CL.bot()),
                           L.nonBot(0, 3, CL.constant(3)),
                           L.nonBot(1, 4, CL.top())};
  for (Value A : Ts)
    for (Value B : Ts)
      for (Value C : Ts)
        EXPECT_EQ(L.comp(L.comp(A, B), C), L.comp(A, L.comp(B, C)));
}

TEST_F(TransformerTest, JoinCollapsesDistinctLinearParts) {
  Value T1 = L.nonBot(2, 0, CL.bot());
  Value T2 = L.nonBot(3, 0, CL.bot());
  EXPECT_EQ(L.lub(T1, T2), L.top());
  EXPECT_EQ(L.lub(T1, T1), T1);
  Value T3 = L.nonBot(2, 0, CL.constant(1));
  EXPECT_EQ(L.lub(T1, T3), T3);
}

} // namespace
