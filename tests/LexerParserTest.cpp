//===- tests/LexerParserTest.cpp - Lexer and parser tests -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

struct LexResult {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::vector<Token> Tokens;
};

LexResult lex(const std::string &Src) {
  LexResult R;
  uint32_t B = R.SM.addBuffer("<test>", Src);
  R.Diags = std::make_unique<DiagnosticEngine>(R.SM);
  Lexer L(R.SM, B, *R.Diags);
  R.Tokens = L.lexAll();
  return R;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Ts) {
  std::vector<TokenKind> Out;
  for (const Token &T : Ts)
    Out.push_back(T.Kind);
  return Out;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, Punctuation) {
  LexResult R = lex(":- <- => == != <= >= && || #{ ( ) { } [ ] , ; . : _");
  EXPECT_FALSE(R.Diags->hasErrors());
  std::vector<TokenKind> K = kinds(R.Tokens);
  std::vector<TokenKind> Want = {
      TokenKind::ColonMinus, TokenKind::LeftArrow,  TokenKind::FatArrow,
      TokenKind::EqEq,       TokenKind::NotEq,      TokenKind::Le,
      TokenKind::Ge,         TokenKind::AmpAmp,     TokenKind::PipePipe,
      TokenKind::HashBrace,  TokenKind::LParen,     TokenKind::RParen,
      TokenKind::LBrace,     TokenKind::RBrace,     TokenKind::LBracket,
      TokenKind::RBracket,   TokenKind::Comma,      TokenKind::Semi,
      TokenKind::Dot,        TokenKind::Colon,      TokenKind::Underscore,
      TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, IdentifierCaseDistinguished) {
  LexResult R = lex("foo Bar _x X1");
  std::vector<TokenKind> K = kinds(R.Tokens);
  std::vector<TokenKind> Want = {TokenKind::Ident, TokenKind::UpperIdent,
                                 TokenKind::Ident, TokenKind::UpperIdent,
                                 TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, KeywordsRecognized) {
  LexResult R = lex("enum case def ext match with let if else rel lat true "
                    "false");
  std::vector<TokenKind> K = kinds(R.Tokens);
  std::vector<TokenKind> Want = {
      TokenKind::KwEnum, TokenKind::KwCase,  TokenKind::KwDef,
      TokenKind::KwExt,  TokenKind::KwMatch, TokenKind::KwWith,
      TokenKind::KwLet,  TokenKind::KwIf,    TokenKind::KwElse,
      TokenKind::KwRel,  TokenKind::KwLat,   TokenKind::KwTrue,
      TokenKind::KwFalse, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, IntegerLiterals) {
  LexResult R = lex("0 42 123456789");
  EXPECT_EQ(R.Tokens[0].IntValue, 0);
  EXPECT_EQ(R.Tokens[1].IntValue, 42);
  EXPECT_EQ(R.Tokens[2].IntValue, 123456789);
}

TEST(LexerTest, IntegerOverflowReported) {
  LexResult R = lex("999999999999999999999999999");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  LexResult R = lex("\"hello\" \"a\\nb\" \"q\\\"q\"");
  EXPECT_FALSE(R.Diags->hasErrors());
  EXPECT_EQ(R.Tokens[0].StrValue, "hello");
  EXPECT_EQ(R.Tokens[1].StrValue, "a\nb");
  EXPECT_EQ(R.Tokens[2].StrValue, "q\"q");
}

TEST(LexerTest, UnterminatedStringReported) {
  LexResult R = lex("\"oops");
  EXPECT_TRUE(R.Diags->hasErrors());
}

TEST(LexerTest, CommentsSkipped) {
  LexResult R = lex("a // line comment\nb /* block /* nested */ still */ c");
  std::vector<TokenKind> K = kinds(R.Tokens);
  std::vector<TokenKind> Want = {TokenKind::Ident, TokenKind::Ident,
                                 TokenKind::Ident, TokenKind::Eof};
  EXPECT_EQ(K, Want);
}

TEST(LexerTest, UnexpectedCharacterReported) {
  LexResult R = lex("a $ b");
  EXPECT_TRUE(R.Diags->hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

struct ParseResult {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  ast::Module M;
};

ParseResult parse(const std::string &Src) {
  ParseResult R;
  uint32_t B = R.SM.addBuffer("<test>", Src);
  R.Diags = std::make_unique<DiagnosticEngine>(R.SM);
  Lexer L(R.SM, B, *R.Diags);
  Parser P(L.lexAll(), *R.Diags);
  R.M = P.parseModule();
  return R;
}

TEST(ParserTest, EnumDeclaration) {
  ParseResult R = parse("enum Parity { case Top, case Even, case Odd, "
                        "case Bot }");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Enums.size(), 1u);
  EXPECT_EQ(R.M.Enums[0].Name, "Parity");
  ASSERT_EQ(R.M.Enums[0].Cases.size(), 4u);
  EXPECT_EQ(R.M.Enums[0].Cases[2].Name, "Odd");
}

TEST(ParserTest, EnumWithPayloads) {
  ParseResult R = parse("enum SULattice { case Top, case Single(Str), "
                        "case Bottom }");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Enums[0].Cases.size(), 3u);
  ASSERT_TRUE(R.M.Enums[0].Cases[1].Payload.has_value());
  EXPECT_EQ(R.M.Enums[0].Cases[1].Payload->Name, "Str");
}

TEST(ParserTest, DefWithMatch) {
  ParseResult R = parse(R"(
def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (_, Parity.Top) => true
  case _ => false
}
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Defs.size(), 1u);
  const ast::DefDecl &D = R.M.Defs[0];
  EXPECT_EQ(D.Name, "leq");
  ASSERT_EQ(D.Params.size(), 2u);
  ASSERT_TRUE(D.Body);
  EXPECT_EQ(D.Body->K, ast::Expr::Kind::Match);
  EXPECT_EQ(D.Body->Cases.size(), 4u);
}

TEST(ParserTest, ExtDef) {
  ParseResult R = parse("ext def esh(n: Str, d: Str): Set[(Str, Str)];");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Defs.size(), 1u);
  EXPECT_TRUE(R.M.Defs[0].IsExt);
  EXPECT_EQ(R.M.Defs[0].RetType.K, ast::TypeExpr::Kind::Set);
  EXPECT_EQ(R.M.Defs[0].RetType.Elems[0].K, ast::TypeExpr::Kind::Tuple);
}

TEST(ParserTest, LatticeBinding) {
  ParseResult R = parse("let Parity<> = (Parity.Bot, Parity.Top, leq, lub, "
                        "glb);");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.LatticeBinds.size(), 1u);
  EXPECT_EQ(R.M.LatticeBinds[0].TypeName, "Parity");
  EXPECT_EQ(R.M.LatticeBinds[0].LeqFn, "leq");
  EXPECT_EQ(R.M.LatticeBinds[0].GlbFn, "glb");
}

TEST(ParserTest, RelAndLatDeclarations) {
  ParseResult R = parse(R"(
rel Load(var: Str, base: Str, field: Str);
lat IntVar(var: Str, Parity<>);
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Preds.size(), 2u);
  EXPECT_FALSE(R.M.Preds[0].IsLat);
  EXPECT_EQ(R.M.Preds[0].Attrs.size(), 3u);
  EXPECT_TRUE(R.M.Preds[1].IsLat);
  EXPECT_EQ(R.M.Preds[1].Attrs[1].Type.K, ast::TypeExpr::Kind::Lattice);
}

TEST(ParserTest, FactsAndRules) {
  ParseResult R = parse(R"(
New("o1", "A").
VarPointsTo(v1, h1) :- New(v1, h1).
VarPointsTo(v1, h2) :- Assign(v1, v2), VarPointsTo(v2, h2).
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Rules.size(), 3u);
  EXPECT_TRUE(R.M.Rules[0].Body.empty());
  EXPECT_EQ(R.M.Rules[1].Body.size(), 1u);
  EXPECT_EQ(R.M.Rules[2].Body.size(), 2u);
  EXPECT_EQ(R.M.Rules[2].Head.Pred, "VarPointsTo");
}

TEST(ParserTest, RuleWithFilterAndTransfer) {
  ParseResult R = parse(R"(
IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2), IntVar(v1, i1), IntVar(v2, i2).
ArithmeticError(r) :- DivExp(r, v1, v2), IntVar(v2, i2), isMaybeZero(i2).
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Rules.size(), 2u);
  // sum(i1, i2) is a call expression in the head's last term.
  EXPECT_EQ(R.M.Rules[0].Head.Terms[1]->K, ast::Expr::Kind::Call);
  // isMaybeZero(i2) is a filter in the body.
  EXPECT_TRUE(
      std::holds_alternative<ast::FilterAST>(R.M.Rules[1].Body.back()));
}

TEST(ParserTest, RuleWithBinders) {
  ParseResult R = parse(R"(
PathEdge(d1, m, d3) :- CFG(n, m), PathEdge(d1, n, d2), d3 <- eshIntra(n, d2).
JumpFn(d1, m, d3, comp(l, s)) :- CFG(n, m), JumpFn(d1, n, d2, l),
                                 (d3, s) <- eshIntra(n, d2).
)");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  ASSERT_EQ(R.M.Rules.size(), 2u);
  const auto &B1 = std::get<ast::BinderAST>(R.M.Rules[0].Body.back());
  EXPECT_EQ(B1.Pattern, (std::vector<std::string>{"d3"}));
  EXPECT_EQ(B1.Fn, "eshIntra");
  const auto &B2 = std::get<ast::BinderAST>(R.M.Rules[1].Body.back());
  EXPECT_EQ(B2.Pattern, (std::vector<std::string>{"d3", "s"}));
}

TEST(ParserTest, NegatedAtom) {
  ParseResult R = parse("Unreach(x) :- Node(x), !Reach(x).");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  const auto &A = std::get<ast::AtomAST>(R.M.Rules[0].Body[1]);
  EXPECT_TRUE(A.Negated);
}

TEST(ParserTest, TagTermsInFacts) {
  ParseResult R = parse("A(Parity.Odd).\nB(1, Sign.Pos).");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  EXPECT_EQ(R.M.Rules[0].Head.Terms[0]->K, ast::Expr::Kind::Tag);
  EXPECT_EQ(R.M.Rules[1].Head.Terms[1]->EnumName, "Sign");
}

TEST(ParserTest, ExpressionPrecedence) {
  ParseResult R = parse("def f(x: Int, y: Int): Int = 1 + x * 2 - y;");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  const ast::Expr &E = *R.M.Defs[0].Body;
  // ((1 + (x * 2)) - y)
  ASSERT_EQ(E.K, ast::Expr::Kind::Binary);
  EXPECT_EQ(E.BOp, ast::BinOp::Sub);
  const ast::Expr &L = *E.Args[0];
  EXPECT_EQ(L.BOp, ast::BinOp::Add);
  EXPECT_EQ(L.Args[1]->BOp, ast::BinOp::Mul);
}

TEST(ParserTest, LetAndIfExpressions) {
  ParseResult R = parse(
      "def f(x: Int): Int = let y = x + 1; if (y > 0) y else 0 - y;");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  EXPECT_EQ(R.M.Defs[0].Body->K, ast::Expr::Kind::Let);
}

TEST(ParserTest, SetLiteral) {
  ParseResult R = parse("def f(x: Int): Set[Int] = #{x, x + 1, 0};");
  ASSERT_FALSE(R.Diags->hasErrors()) << R.Diags->render();
  EXPECT_EQ(R.M.Defs[0].Body->K, ast::Expr::Kind::SetLit);
  EXPECT_EQ(R.M.Defs[0].Body->Args.size(), 3u);
}

TEST(ParserTest, ErrorRecoveryProducesMultipleDiagnostics) {
  ParseResult R = parse(R"(
rel A(;
rel B(x: Int);
def f(): = 3;
rel C(y: Str);
)");
  EXPECT_TRUE(R.Diags->hasErrors());
  EXPECT_GE(R.Diags->numErrors(), 2u);
  // B and C should still have parsed.
  bool SawB = false, SawC = false;
  for (const auto &P : R.M.Preds) {
    SawB |= P.Name == "B";
    SawC |= P.Name == "C";
  }
  EXPECT_TRUE(SawB);
  EXPECT_TRUE(SawC);
}

TEST(ParserTest, MissingDotReported) {
  ParseResult R = parse("A(x) :- B(x)");
  EXPECT_TRUE(R.Diags->hasErrors());
}

} // namespace
