//===- tests/ModelTheoryTest.cpp - §3.2 semantics tests -------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Replays the paper's worked examples from §3.1 and §3.2 against the
/// executable model-theoretic semantics, and checks that the production
/// solver computes exactly the brute-force minimal model.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/ModelTheory.h"

#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

//===----------------------------------------------------------------------===//
// Datalog example from §3.1: A(1). B(2,3). A(x) :- B(x, _).
//===----------------------------------------------------------------------===//

class DatalogSemanticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    P = std::make_unique<Program>(F);
    A = P->relation("A", 1);
    B = P->relation("B", 2);
    P->addFact(A, {F.integer(1)});
    P->addFact(B, {F.integer(2), F.integer(3)});
    RuleBuilder().head(*&A, {"x"}).atom(B, {"x", "_"}).addTo(*P);
    H.Terms = {F.integer(1), F.integer(2), F.integer(3)};
  }

  GroundAtom a(int X) { return {A, {F.integer(X)}}; }
  GroundAtom b(int X, int Y) { return {B, {F.integer(X), F.integer(Y)}}; }

  ValueFactory F;
  std::unique_ptr<Program> P;
  PredId A = 0, B = 0;
  HerbrandSpec H;
};

TEST_F(DatalogSemanticsTest, PaperInterpretationsI1ToI4) {
  // I1 = {A(1)} — not a model (B(2,3) fact not satisfied).
  Interpretation I1 = {a(1)};
  EXPECT_FALSE(isModel(*P, H, I1));
  // I2 = {A(1), B(2,3)} — not a model (rule instance A(2) :- B(2,3)).
  Interpretation I2 = {a(1), b(2, 3)};
  EXPECT_FALSE(isModel(*P, H, I2));
  // I3 = {A(1), A(2), A(3), B(2,3)} — a model, but not minimal.
  Interpretation I3 = {a(1), a(2), a(3), b(2, 3)};
  EXPECT_TRUE(isModel(*P, H, I3));
  // I4 = {A(1), A(2), B(2,3)} — the minimal model.
  Interpretation I4 = {a(1), a(2), b(2, 3)};
  EXPECT_TRUE(isModel(*P, H, I4));
  EXPECT_TRUE(modelLeq(*P, I4, I3));
  EXPECT_FALSE(modelLeq(*P, I3, I4));
}

TEST_F(DatalogSemanticsTest, BruteForceFindsI4) {
  auto M = bruteForceMinimalModel(*P, H);
  ASSERT_TRUE(M.has_value());
  Interpretation I4 = {a(1), a(2), b(2, 3)};
  std::sort(I4.begin(), I4.end());
  EXPECT_EQ(*M, I4);
}

TEST_F(DatalogSemanticsTest, SolverMatchesBruteForce) {
  auto M = bruteForceMinimalModel(*P, H);
  ASSERT_TRUE(M.has_value());
  Solver S(*P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(*P, S), *M);
}

//===----------------------------------------------------------------------===//
// Parity example from §3.2: A(Even). A(Odd). B(Odd).
//===----------------------------------------------------------------------===//

class ParitySemanticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    L = std::make_unique<ParityLattice>(F);
    P = std::make_unique<Program>(F);
    A = P->lattice("A", 1, L.get());
    B = P->lattice("B", 1, L.get());
    P->addLatFact(A, std::initializer_list<Value>{}, L->even());
    P->addLatFact(A, std::initializer_list<Value>{}, L->odd());
    P->addLatFact(B, std::initializer_list<Value>{}, L->odd());
    H.LatticeElems[L.get()] = {L->bot(), L->odd(), L->even(), L->top()};
  }

  GroundAtom ga(PredId Pr, Value V) { return {Pr, {V}}; }

  ValueFactory F;
  std::unique_ptr<ParityLattice> L;
  std::unique_ptr<Program> P;
  PredId A = 0, B = 0;
  HerbrandSpec H;
};

TEST_F(ParitySemanticsTest, PaperInterpretationsI1ToI6) {
  // I1 = {A(Top)} — not a model: B(Odd) untrue.
  EXPECT_FALSE(isModel(*P, H, {ga(A, L->top())}));
  // I2 = {A(Top), B(Bot)} — not a model: B(Odd) still untrue.
  EXPECT_FALSE(isModel(*P, H, {ga(A, L->top()), ga(B, L->bot())}));
  // I3 = {A(Top), B(Odd), B(Top)} — a model, but not compact.
  Interpretation I3 = {ga(A, L->top()), ga(B, L->odd()), ga(B, L->top())};
  EXPECT_TRUE(isModel(*P, H, I3));
  EXPECT_FALSE(isCompact(*P, I3));
  // I4 = {A(Even), A(Odd), B(Odd)} — a model, but not compact.
  Interpretation I4 = {ga(A, L->even()), ga(A, L->odd()), ga(B, L->odd())};
  EXPECT_TRUE(isModel(*P, H, I4));
  EXPECT_FALSE(isCompact(*P, I4));
  // I5 = {A(Top), B(Top)} — compact model, not minimal.
  Interpretation I5 = {ga(A, L->top()), ga(B, L->top())};
  EXPECT_TRUE(isModel(*P, H, I5));
  EXPECT_TRUE(isCompact(*P, I5));
  // I6 = {A(Top), B(Odd)} — the minimal model.
  Interpretation I6 = {ga(A, L->top()), ga(B, L->odd())};
  EXPECT_TRUE(isModel(*P, H, I6));
  EXPECT_TRUE(isCompact(*P, I6));
  EXPECT_TRUE(modelLeq(*P, I6, I5));
  EXPECT_FALSE(modelLeq(*P, I5, I6));
}

TEST_F(ParitySemanticsTest, BruteForceFindsI6) {
  auto M = bruteForceMinimalModel(*P, H);
  ASSERT_TRUE(M.has_value());
  Interpretation I6 = {ga(A, L->top()), ga(B, L->odd())};
  std::sort(I6.begin(), I6.end());
  EXPECT_EQ(*M, I6);
}

TEST_F(ParitySemanticsTest, SolverMatchesBruteForce) {
  auto M = bruteForceMinimalModel(*P, H);
  ASSERT_TRUE(M.has_value());
  Solver S(*P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(*P, S), dropBottomAtoms(*P, *M));
}

//===----------------------------------------------------------------------===//
// Sign example from §3.2: A(1, Pos). A(2, Pos). A(2, Neg).
//===----------------------------------------------------------------------===//

class SignSemanticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    L = std::make_unique<SignLattice>(F);
    P = std::make_unique<Program>(F);
    A = P->lattice("A", 2, L.get());
    P->addLatFact(A, {F.integer(1)}, L->pos());
    P->addLatFact(A, {F.integer(2)}, L->pos());
    P->addLatFact(A, {F.integer(2)}, L->neg());
    H.Terms = {F.integer(1), F.integer(2)};
    H.LatticeElems[L.get()] = {L->bot(), L->neg(), L->zer(), L->pos(),
                               L->top()};
  }

  GroundAtom ga(int K, Value V) { return {A, {F.integer(K), V}}; }

  ValueFactory F;
  std::unique_ptr<SignLattice> L;
  std::unique_ptr<Program> P;
  PredId A = 0;
  HerbrandSpec H;
};

TEST_F(SignSemanticsTest, PaperInterpretations) {
  // I1 = {A(1, Top)} — not a model (nothing makes A(2, ...) true).
  EXPECT_FALSE(isModel(*P, H, {ga(1, L->top())}));
  // I2 = {A(1,Pos), A(1,Neg), A(2,Top)} — model, not compact.
  Interpretation I2 = {ga(1, L->pos()), ga(1, L->neg()), ga(2, L->top())};
  EXPECT_TRUE(isModel(*P, H, I2));
  EXPECT_FALSE(isCompact(*P, I2));
  // I3 = {A(1,Top), A(2,Top)} — compact model.
  Interpretation I3 = {ga(1, L->top()), ga(2, L->top())};
  EXPECT_TRUE(isModel(*P, H, I3));
  EXPECT_TRUE(isCompact(*P, I3));
  // I4 = {A(1,Pos), A(2,Top)} — the minimal model.
  Interpretation I4 = {ga(1, L->pos()), ga(2, L->top())};
  EXPECT_TRUE(isModel(*P, H, I4));
  EXPECT_TRUE(isCompact(*P, I4));
  EXPECT_TRUE(modelLeq(*P, I4, I3));
  EXPECT_FALSE(modelLeq(*P, I3, I4));
}

TEST_F(SignSemanticsTest, BruteForceAndSolverAgree) {
  auto M = bruteForceMinimalModel(*P, H);
  ASSERT_TRUE(M.has_value());
  Interpretation I4 = {ga(1, L->pos()), ga(2, L->top())};
  std::sort(I4.begin(), I4.end());
  EXPECT_EQ(*M, I4);
  Solver S(*P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(*P, S), dropBottomAtoms(*P, *M));
}

//===----------------------------------------------------------------------===//
// A program with rules over lattices, checked against brute force.
//===----------------------------------------------------------------------===//

TEST(ModelTheoryRuleTest, LatticeRulePropagation) {
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).addTo(P);
  HerbrandSpec H;
  H.LatticeElems[&L] = {L.bot(), L.odd(), L.even(), L.top()};

  auto M = bruteForceMinimalModel(P, H);
  ASSERT_TRUE(M.has_value());
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(P, S), dropBottomAtoms(P, *M));
  EXPECT_EQ(S.latValue(B, std::initializer_list<Value>{}), L.odd());
}

TEST(ModelTheoryRuleTest, GlbRuleLeavesBottomCellAbsent) {
  // R(x) :- A(x), B(x). with A(Odd), B(Even): the strongest consistent
  // instantiation of x is Odd ⊓ Even = ⊥, so under the ⊥-free reading the
  // R cell stays absent — in the brute-force minimal model and in the
  // solver alike.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.even());
  RuleBuilder().head(R, {"x"}).atom(A, {"x"}).atom(B, {"x"}).addTo(P);
  HerbrandSpec H;
  H.LatticeElems[&L] = {L.bot(), L.odd(), L.even(), L.top()};

  auto M = bruteForceMinimalModel(P, H);
  ASSERT_TRUE(M.has_value());
  for (const GroundAtom &GA : *M)
    EXPECT_NE(GA.Pred, R) << "R cell unexpectedly present";
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(solverModel(P, S), *M);
}

TEST(ModelTheoryRuleTest, BottomFactIsTriviallySatisfied) {
  // A(⊥) as a fact imposes nothing: the minimal model is empty, matching
  // the engine's no-⊥-materialization behavior.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  (void)A;
  P.addLatFact(A, std::initializer_list<Value>{}, L.bot());
  HerbrandSpec H;
  H.LatticeElems[&L] = {L.bot(), L.odd(), L.even(), L.top()};
  auto M = bruteForceMinimalModel(P, H);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->empty());
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(solverModel(P, S).empty());
}

} // namespace
