//===- tests/ParallelSolverTest.cpp - Parallel engine differential tests ---===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Differential tests for the work-stealing parallel engine: on every
/// program we can generate, the parallel solver must compute a model
/// value-identical to the sequential solver at any worker count. Both
/// solvers share the program's hash-consing ValueFactory, so "identical"
/// is exact handle equality, not just structural equality; only row
/// insertion order may differ, so models are compared as sorted
/// Interpretations.
///
/// Covered: random core-fragment programs (seeded), the §3.7 compactness
/// example, all four paper case studies (Strong Update incl. the
/// interpreted-FLIX-source pipeline, IFDS, IDE, shortest paths), several
/// parallel solvers running concurrently against one shared factory, and
/// the timeout / provenance-rejection paths.
///
//===----------------------------------------------------------------------===//

#include "parallel/ParallelSolver.h"

#include "analyses/Ide.h"
#include "analyses/Ifds.h"
#include "analyses/ShortestPaths.h"
#include "analyses/StrongUpdate.h"
#include "fixpoint/ModelTheory.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"
#include "workload/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace flix;

namespace {

/// Extracts a solver's model as a sorted Interpretation; works for both
/// the sequential and the parallel solver (same query API).
template <typename SolverT>
Interpretation modelOf(const Program &P, const SolverT &S) {
  Interpretation I;
  for (PredId Pred = 0; Pred < P.predicates().size(); ++Pred)
    for (const std::vector<Value> &Tup : S.tuples(Pred)) {
      GroundAtom GA;
      GA.Pred = Pred;
      GA.Args = Tup;
      I.push_back(std::move(GA));
    }
  std::sort(I.begin(), I.end());
  return I;
}

class ParallelSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelSeedTest, MatchesSequentialAtAllThreadCounts) {
  RandomProgramOptions Opts;
  Opts.NumRelations = 2;
  Opts.NumLatPredicates = 2;
  Opts.NumRules = 6;
  Opts.NumFacts = 6;
  Opts.NumConstants = 3;
  RandomProgramBundle B = generateRandomProgram(GetParam(), Opts);

  Solver Seq(*B.Prog);
  ASSERT_TRUE(Seq.solve().ok());
  Interpretation Expected = modelOf(*B.Prog, Seq);

  for (unsigned Threads : {1u, 2u, 8u}) {
    SolverOptions PO;
    PO.NumThreads = Threads;
    // Every (pred, mask) the workers probe must have been pre-built by
    // the static index analysis — trip the debug assert if not.
    PO.StrictIndexCoverage = true;
    ParallelSolver Par(*B.Prog, PO);
    SolveStats St = Par.solve();
    ASSERT_TRUE(St.ok()) << St.Error;
    EXPECT_EQ(St.IndexFallbacks, 0u) << "threads=" << Threads;
    EXPECT_EQ(modelOf(*B.Prog, Par), Expected)
        << "threads=" << Threads << "\nprogram:\n"
        << B.Prog->dump();
  }
}

TEST_P(ParallelSeedTest, ReorderAndNoIndexDoNotChangeResults) {
  RandomProgramOptions Opts;
  Opts.NumRules = 5;
  Opts.NumFacts = 5;
  Opts.NumConstants = 3;
  RandomProgramBundle B = generateRandomProgram(GetParam() * 131 + 9, Opts);

  Solver Seq(*B.Prog);
  ASSERT_TRUE(Seq.solve().ok());
  Interpretation Expected = modelOf(*B.Prog, Seq);

  for (bool Reorder : {false, true})
    for (bool UseIndexes : {false, true}) {
      SolverOptions PO;
      PO.NumThreads = 2;
      PO.ReorderBody = Reorder;
      PO.UseIndexes = UseIndexes;
      ParallelSolver Par(*B.Prog, PO);
      ASSERT_TRUE(Par.solve().ok());
      EXPECT_EQ(modelOf(*B.Prog, Par), Expected)
          << "reorder=" << Reorder << " indexes=" << UseIndexes
          << "\nprogram:\n"
          << B.Prog->dump();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSeedTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ParallelSolverTest, SemiNaiveCompactnessExample) {
  // §3.7: A(Odd). B(Even). A(x) :- B(x). R(x) :- isMaybeZero(x), A(x).
  // The A cell joins to Top and R must see the joined value, also when
  // rounds are evaluated against immutable snapshots.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  FnId IsMaybeZero = P.function(
      "isMaybeZero", 1, FnRole::Filter, [&](std::span<const Value> Args) {
        return F.boolean(L.isMaybeZero(Args[0]));
      });
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.even());
  RuleBuilder().head(A, {"x"}).atom(B, {"x"}).addTo(P);
  RuleBuilder()
      .head(R, {"x"})
      .atom(A, {"x"})
      .filter(IsMaybeZero, {"x"})
      .addTo(P);

  SolverOptions Opts;
  Opts.NumThreads = 2;
  ParallelSolver S(P, Opts);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(A, std::initializer_list<Value>{}), L.top());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.top());
}

TEST(ParallelSolverTest, NaiveStrategyFallsBackToSemiNaive) {
  RandomProgramOptions Opts;
  Opts.NumRules = 5;
  Opts.NumFacts = 5;
  RandomProgramBundle B = generateRandomProgram(4242, Opts);

  SolverOptions SeqNaive;
  SeqNaive.Strat = Strategy::Naive;
  Solver Seq(*B.Prog, SeqNaive);
  ASSERT_TRUE(Seq.solve().ok());

  SolverOptions ParNaive;
  ParNaive.Strat = Strategy::Naive;
  ParNaive.NumThreads = 2;
  ParallelSolver Par(*B.Prog, ParNaive);
  ASSERT_TRUE(Par.solve().ok());
  EXPECT_EQ(modelOf(*B.Prog, Par), modelOf(*B.Prog, Seq));
}

TEST(ParallelSolverTest, ProvenanceIsRejected) {
  ValueFactory F;
  Program P(F);
  PredId E = P.relation("E", 2);
  P.addFact(E, {F.integer(1), F.integer(2)});

  SolverOptions Opts;
  Opts.NumThreads = 2;
  Opts.TrackProvenance = true;
  ParallelSolver S(P, Opts);
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Error);
  EXPECT_NE(St.Error.find("provenance"), std::string::npos);
}

TEST(ParallelSolverTest, TimeoutAborts) {
  // All-pairs shortest paths on a dense-ish graph with an (effectively)
  // zero deadline: the solve must stop with Timeout, not run to the
  // fixpoint.
  WeightedGraph G = generateGraph(7, 300, 8.0, 10);
  ValueFactory F;
  MinCostLattice L(F);
  Program P(F);
  PredId Edge = P.relation("Edge", 3);
  PredId Node = P.relation("Node", 1);
  PredId Dist = P.lattice("Dist", 3, &L);
  FnId Add = P.function("addCost", 2, FnRole::Transfer,
                        [&L](std::span<const Value> A) {
                          if (L.isInfinity(A[0]))
                            return L.infinity();
                          return L.addCost(A[0], A[1].asInt());
                        });
  RuleBuilder()
      .head(Dist, {"s", "s", RuleBuilder::Spec(L.cost(0))})
      .atom(Node, {"s"})
      .addTo(P);
  RuleBuilder()
      .headFn(Dist, {"s", "z"}, Add, {"d", "c"})
      .atom(Dist, {"s", "y", "d"})
      .atom(Edge, {"y", "z", "c"})
      .addTo(P);
  for (int V = 0; V < G.NumNodes; ++V)
    P.addFact(Node, {F.integer(V)});
  for (const auto &E : G.Edges)
    P.addFact(Edge, {F.integer(E[0]), F.integer(E[1]), F.integer(E[2])});

  SolverOptions Opts;
  Opts.NumThreads = 2;
  Opts.TimeLimitSeconds = 1e-6;
  ParallelSolver S(P, Opts);
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Timeout);
}

/// Transitive closure over a star graph: hub node 0 has \p Fanout
/// outgoing edges plus a few feeder nodes pointing at it, so delta rounds
/// funnel through one hot Edge bucket — the skew the intra-rule spill
/// path exists to break up.
struct SkewedWorkload {
  ValueFactory F;
  Program P{F};
  PredId Edge, Path;

  explicit SkewedWorkload(int Fanout) {
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    for (int I = 1; I <= Fanout; ++I)
      P.addFact(Edge, {F.integer(0), F.integer(I)});
    for (int Feeder = 0; Feeder < 4; ++Feeder)
      P.addFact(Edge, {F.integer(1000 + Feeder), F.integer(0)});
  }
};

TEST(ParallelSolverTest, SkewedWorkloadSpawnsSubtasksAndMatchesSequential) {
  constexpr int Fanout = 400;
  SkewedWorkload W(Fanout);

  Solver Seq(W.P);
  ASSERT_TRUE(Seq.solve().ok());
  Interpretation Expected = modelOf(W.P, Seq);

  for (unsigned Threads : {1u, 2u, 8u}) {
    SolverOptions PO;
    PO.NumThreads = Threads;
    PO.SpillThreshold = 16; // force splitting on the hub bucket
    PO.StrictIndexCoverage = true;
    ParallelSolver Par(W.P, PO);
    SolveStats St = Par.solve();
    ASSERT_TRUE(St.ok()) << St.Error;
    // The hub bucket (Fanout rows, threshold 16) must have been split.
    EXPECT_GT(St.SpawnedSubtasks, 0u) << "threads=" << Threads;
    EXPECT_GE(St.MaxFanout, 2u) << "threads=" << Threads;
    EXPECT_EQ(St.IndexFallbacks, 0u) << "threads=" << Threads;
    EXPECT_EQ(modelOf(W.P, Par), Expected) << "threads=" << Threads;
  }
}

TEST(ParallelSolverTest, SpillThresholdSweepSameModel) {
  SkewedWorkload W(200);
  Solver Seq(W.P);
  ASSERT_TRUE(Seq.solve().ok());
  Interpretation Expected = modelOf(W.P, Seq);

  for (uint32_t Thresh : {0u, 4u, 64u, 1024u}) {
    SolverOptions PO;
    PO.NumThreads = 2;
    PO.SpillThreshold = Thresh;
    ParallelSolver Par(W.P, PO);
    SolveStats St = Par.solve();
    ASSERT_TRUE(St.ok()) << St.Error;
    if (Thresh == 0) {
      EXPECT_EQ(St.SpawnedSubtasks, 0u) << "spilling disabled";
    }
    EXPECT_EQ(modelOf(W.P, Par), Expected) << "threshold=" << Thresh;
  }
}

TEST(ParallelSolverTest, SingleRowFanoutBombTimesOut) {
  // One driver row whose body explodes into a Cartesian product of
  // 300^3 = 27M matches. Abort checks run per match (not per driver
  // row), so the solve must stop near the deadline at every thread
  // count instead of grinding through the product (regression for the
  // timeout-overshoot bug).
  constexpr int N = 300;
  ValueFactory F;
  Program P(F);
  PredId S = P.relation("S", 1);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId C = P.relation("C", 1);
  PredId Bomb = P.relation("Bomb", 3);
  RuleBuilder()
      .head(Bomb, {"x", "y", "z"})
      .atom(S, {"w"})
      .atom(A, {"x"})
      .atom(B, {"y"})
      .atom(C, {"z"})
      .addTo(P);
  P.addFact(S, {F.integer(0)});
  for (int I = 0; I < N; ++I) {
    P.addFact(A, {F.integer(I)});
    P.addFact(B, {F.integer(I)});
    P.addFact(C, {F.integer(I)});
  }

  for (unsigned Threads : {1u, 8u}) {
    SolverOptions Opts;
    Opts.NumThreads = Threads;
    Opts.TimeLimitSeconds = 0.05;
    Opts.SpillThreshold = 64; // also cover abort inside spawned sub-tasks
    ParallelSolver Sol(P, Opts);
    SolveStats St = Sol.solve();
    EXPECT_EQ(St.St, SolveStats::Status::Timeout) << "threads=" << Threads;
    // Tolerance is generous (sanitizer builds are slow), but far below
    // the full product's run time.
    EXPECT_LT(St.Seconds, 5.0) << "threads=" << Threads;
    EXPECT_LT(St.RuleFirings, uint64_t(N) * N * N) << "threads=" << Threads;
  }
}

TEST(ParallelSolverTest, KeyArity64RejectedWithDiagnostic) {
  // 64 key columns would shift a uint64_t by 64 in the bound-mask
  // computation (UB); both solvers must reject the program at solve()
  // with a diagnostic instead (regression for the mask-overflow bug).
  ValueFactory F;
  Program P(F);
  P.relation("Wide", 64);

  SolverOptions PO;
  PO.NumThreads = 2;
  ParallelSolver Par(P, PO);
  SolveStats St = Par.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Error);
  EXPECT_NE(St.Error.find("Wide"), std::string::npos);
  EXPECT_NE(St.Error.find("key arity 64"), std::string::npos);

  Solver Seq(P);
  SolveStats SeqSt = Seq.solve();
  EXPECT_EQ(SeqSt.St, SolveStats::Status::Error);
  EXPECT_NE(SeqSt.Error.find("key arity 64"), std::string::npos);
}

TEST(ParallelSolverTest, IndexPrebuildRunsThroughPool) {
  // Edge has rows before the first eval phase, so the static (pred,
  // mask) indexes must be built by pool tasks (partial scans + merges),
  // not sequentially — visible as IndexBuildTasks in the stats.
  SkewedWorkload W(300);
  SolverOptions PO;
  PO.NumThreads = 4;
  PO.StrictIndexCoverage = true;
  ParallelSolver S(W.P, PO);
  SolveStats St = S.solve();
  ASSERT_TRUE(St.ok()) << St.Error;
  EXPECT_GT(St.IndexBuildTasks, 0u);
  EXPECT_EQ(St.IndexFallbacks, 0u);
  // Both rules' non-driver atoms probe partially bound patterns.
  EXPECT_GE(S.table(W.Edge).numIndexes(), 1u);
  EXPECT_GE(S.table(W.Path).numIndexes(), 1u);
}

TEST(ParallelSolverTest, StatsAreReported) {
  RandomProgramOptions Opts;
  Opts.NumRules = 6;
  Opts.NumFacts = 6;
  RandomProgramBundle B = generateRandomProgram(99, Opts);

  SolverOptions PO;
  PO.NumThreads = 2;
  ParallelSolver S(*B.Prog, PO);
  SolveStats St = S.solve();
  ASSERT_TRUE(St.ok());
  EXPECT_GT(St.ParallelTasks, 0u);
  EXPECT_GT(St.Iterations, 0u);
  EXPECT_GT(St.Seconds, 0.0);
  // Compiled plans are on by default and every rule lowers to >= 1 step.
  EXPECT_GT(St.PlanSteps, 0u);
}

TEST(ParallelSolverTest, ConcurrentSolversSharedFactory) {
  // Several ParallelSolver instances over programs that share ONE
  // factory, solved from concurrent host threads: exercises the
  // lock-sharded interning path from many pools at once.
  ValueFactory F;
  F.enableConcurrentInterning();

  constexpr int NumPrograms = 4;
  constexpr int Chain = 24;
  std::vector<std::unique_ptr<Program>> Programs;
  std::vector<PredId> PathIds;
  for (int PI = 0; PI < NumPrograms; ++PI) {
    auto P = std::make_unique<Program>(F);
    PredId Edge = P->relation("Edge", 2);
    PredId Path = P->relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(*P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(*P);
    // A chain with a program-specific offset so the threads keep
    // interning fresh integers while running.
    for (int I = 0; I < Chain; ++I)
      P->addFact(Edge, {F.integer(PI * 1000 + I),
                        F.integer(PI * 1000 + I + 1)});
    PathIds.push_back(Path);
    Programs.push_back(std::move(P));
  }

  std::vector<size_t> PathCounts(NumPrograms, 0);
  // Not vector<bool>: adjacent bit-packed elements would race.
  std::vector<char> SolveOk(NumPrograms, 0);
  std::vector<std::thread> Hosts;
  for (int PI = 0; PI < NumPrograms; ++PI)
    Hosts.emplace_back([&, PI] {
      SolverOptions Opts;
      Opts.NumThreads = 2;
      ParallelSolver S(*Programs[PI], Opts);
      SolveOk[PI] = S.solve().ok();
      PathCounts[PI] = S.table(PathIds[PI]).size();
    });
  for (std::thread &T : Hosts)
    T.join();

  // A chain of N edges has N*(N+1)/2 transitive-closure pairs.
  for (int PI = 0; PI < NumPrograms; ++PI) {
    EXPECT_TRUE(SolveOk[PI]) << "program " << PI;
    EXPECT_EQ(PathCounts[PI], static_cast<size_t>(Chain) * (Chain + 1) / 2)
        << "program " << PI;
  }
}

// ---- Paper case studies: parallel vs sequential ------------------------

TEST(ParallelCaseStudyTest, StrongUpdateNative) {
  PointerProgram In = generatePointerProgram(2016, 1500);
  StrongUpdateResult Seq = runStrongUpdateFlix(In, SolverOptions());
  ASSERT_TRUE(Seq.ok()) << Seq.Error;
  for (unsigned Threads : {1u, 2u, 8u}) {
    SolverOptions Opts;
    Opts.NumThreads = Threads;
    StrongUpdateResult Par = runStrongUpdateFlix(In, Opts);
    ASSERT_TRUE(Par.ok()) << Par.Error;
    EXPECT_TRUE(Par.samePointsTo(Seq)) << "threads=" << Threads;
  }
}

TEST(ParallelCaseStudyTest, StrongUpdateInterpretedSource) {
  // The FLIX-source pipeline funnels every lattice operation through the
  // interpreter; with NumThreads > 0 it runs in thread-safe mode.
  PointerProgram In = generatePointerProgram(7, 600);
  StrongUpdateResult Seq = runStrongUpdateFlixSource(In, SolverOptions());
  ASSERT_TRUE(Seq.ok()) << Seq.Error;
  SolverOptions Opts;
  Opts.NumThreads = 2;
  StrongUpdateResult Par = runStrongUpdateFlixSource(In, Opts);
  ASSERT_TRUE(Par.ok()) << Par.Error;
  EXPECT_TRUE(Par.samePointsTo(Seq));
}

TEST(ParallelCaseStudyTest, StrongUpdateInterpretedSourceUnserialized) {
  // Regression: compiled-FLIX programs used to need SerializeExternals
  // (one global lock around every external call) to run on the parallel
  // solver, because the interpreter kept per-call state in members. The
  // interpreter is now intrinsically thread-safe, so workers may call a
  // shared Interp concurrently with no lock. Memoization is disabled so
  // every lattice operation actually re-enters the interpreter instead
  // of being absorbed by the cache.
  PointerProgram In = generatePointerProgram(41, 800);
  StrongUpdateResult Seq = runStrongUpdateFlixSource(In, SolverOptions());
  ASSERT_TRUE(Seq.ok()) << Seq.Error;
  for (unsigned Threads : {2u, 8u}) {
    SolverOptions Opts;
    Opts.NumThreads = Threads;
    Opts.SerializeExternals = false;
    Opts.EnableMemo = false;
    StrongUpdateResult Par = runStrongUpdateFlixSource(In, Opts);
    ASSERT_TRUE(Par.ok()) << Par.Error;
    EXPECT_TRUE(Par.samePointsTo(Seq)) << "threads=" << Threads;
  }
}

TEST(ParallelCaseStudyTest, StrongUpdateInterpretedSourceMemoized) {
  // Same pipeline with the memo cache on: concurrent workers populate
  // and hit the sharded cache, the model is unchanged, and the solve
  // reports cache traffic in the stats.
  PointerProgram In = generatePointerProgram(41, 800);
  StrongUpdateResult Seq = runStrongUpdateFlixSource(In, SolverOptions());
  ASSERT_TRUE(Seq.ok()) << Seq.Error;
  SolverOptions Opts;
  Opts.NumThreads = 8;
  Opts.SerializeExternals = false;
  StrongUpdateResult Par = runStrongUpdateFlixSource(In, Opts);
  ASSERT_TRUE(Par.ok()) << Par.Error;
  EXPECT_TRUE(Par.samePointsTo(Seq));
}

TEST(ParallelCaseStudyTest, Ifds) {
  IcfgProgram G = generateIcfg(2016, 12, 40, 120, 3);
  IfdsProblem Prob = G.toIfdsProblem();
  IfdsResult Imp = runIfdsImperative(Prob);
  IfdsResult Seq = runIfdsFlix(Prob);
  ASSERT_TRUE(Seq.Ok) << Seq.Error;
  EXPECT_TRUE(Seq.sameResult(Imp));
  for (unsigned Threads : {1u, 2u, 8u}) {
    SolverOptions Opts;
    Opts.NumThreads = Threads;
    IfdsResult Par = runIfdsFlix(Prob, Opts);
    ASSERT_TRUE(Par.Ok) << Par.Error;
    EXPECT_TRUE(Par.sameResult(Seq)) << "threads=" << Threads;
  }
}

TEST(ParallelCaseStudyTest, Ide) {
  IcfgProgram G = generateIcfg(99, 8, 30, 80, 3);
  IdeProblem Prob = G.toIdeProblem();
  IdeResult Seq = runIdeFlix(Prob);
  ASSERT_TRUE(Seq.Ok) << Seq.Error;
  SolverOptions Opts;
  Opts.NumThreads = 2;
  IdeResult Par = runIdeFlix(Prob, Opts);
  ASSERT_TRUE(Par.Ok) << Par.Error;
  EXPECT_EQ(Par.Values, Seq.Values);
  EXPECT_EQ(Par.Reachable, Seq.Reachable);
}

TEST(ParallelCaseStudyTest, ShortestPaths) {
  WeightedGraph G = generateGraph(5, 400, 4.0, 20);
  SsspResult Ref = runDijkstra(G, 0);
  for (unsigned Threads : {2u, 8u}) {
    SolverOptions Opts;
    Opts.NumThreads = Threads;
    SsspResult Par = runShortestPathsFlix(G, 0, Opts);
    ASSERT_TRUE(Par.Ok);
    EXPECT_EQ(Par.Dist, Ref.Dist) << "threads=" << Threads;
  }
}

} // namespace
