//===- tests/PlanDifferentialTest.cpp - compiled plans vs legacy joins ----===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Differential matrix for the compiled-plan executor and the extern
/// memo cache: CompilePlans {off,on} x EnableMemo {off,on} x
/// NumThreads {0,1,8} x ReorderBody {off,on} — 24 configurations per
/// workload — must all produce models identical to the legacy recursive
/// join evaluator running sequentially. The solvers share each
/// workload's hash-consed inputs, so equality of the extracted results
/// is exact, not just structural.
///
/// Workloads are the three paper case-study families: shortest paths on
/// a weighted graph (lattice transfer function), IFDS on a synthetic
/// ICFG (relational, flow functions as externs), and the Figure 4 Strong
/// Update analysis on a pointer program (filters + negation + lattice
/// head function). Strong Update also runs through the FLIX-source
/// pipeline, where every extern is an interpreter call and the memo
/// cache sees real traffic.
///
//===----------------------------------------------------------------------===//

#include "analyses/Ifds.h"
#include "analyses/ShortestPaths.h"
#include "analyses/StrongUpdate.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace flix;

namespace {

/// The full 24-configuration matrix.
std::vector<SolverOptions> matrix() {
  std::vector<SolverOptions> Out;
  for (bool Plans : {false, true})
    for (bool Memo : {false, true})
      for (unsigned Threads : {0u, 1u, 8u})
        for (bool Reorder : {false, true}) {
          SolverOptions O;
          O.CompilePlans = Plans;
          O.EnableMemo = Memo;
          O.NumThreads = Threads;
          O.ReorderBody = Reorder;
          Out.push_back(O);
        }
  return Out;
}

/// Sequential legacy evaluator: the pre-plan recursive join, no memo.
SolverOptions legacy() {
  SolverOptions O;
  O.CompilePlans = false;
  O.EnableMemo = false;
  return O;
}

std::string describe(const SolverOptions &O) {
  return "plans=" + std::to_string(O.CompilePlans) +
         " memo=" + std::to_string(O.EnableMemo) +
         " threads=" + std::to_string(O.NumThreads) +
         " reorder=" + std::to_string(O.ReorderBody);
}

TEST(PlanDifferentialTest, ShortestPathsMatrix) {
  WeightedGraph G = generateGraph(11, 150, 4.0, 12);
  SsspResult Base = runShortestPathsFlix(G, 0, legacy());
  ASSERT_TRUE(Base.Ok);
  // Anchor the baseline itself against the imperative solver.
  EXPECT_EQ(Base.Dist, runDijkstra(G, 0).Dist);
  for (const SolverOptions &O : matrix()) {
    SsspResult R = runShortestPathsFlix(G, 0, O);
    ASSERT_TRUE(R.Ok) << describe(O);
    EXPECT_EQ(R.Dist, Base.Dist) << describe(O);
  }
}

TEST(PlanDifferentialTest, IfdsMatrix) {
  IcfgProgram G = generateIcfg(5, 10, 32, 90, 3);
  IfdsProblem Prob = G.toIfdsProblem();
  IfdsResult Base = runIfdsFlix(Prob, legacy());
  ASSERT_TRUE(Base.Ok) << Base.Error;
  EXPECT_TRUE(Base.sameResult(runIfdsImperative(Prob)));
  for (const SolverOptions &O : matrix()) {
    IfdsResult R = runIfdsFlix(Prob, O);
    ASSERT_TRUE(R.Ok) << describe(O) << ": " << R.Error;
    EXPECT_TRUE(R.sameResult(Base)) << describe(O);
    if (O.CompilePlans)
      EXPECT_GT(R.Stats.PlanSteps, 0u) << describe(O);
    else
      EXPECT_EQ(R.Stats.PlanSteps, 0u) << describe(O);
  }
}

TEST(PlanDifferentialTest, StrongUpdateMatrix) {
  PointerProgram In = generatePointerProgram(13, 700);
  StrongUpdateResult Base = runStrongUpdateFlix(In, legacy());
  ASSERT_TRUE(Base.ok()) << Base.Error;
  for (const SolverOptions &O : matrix()) {
    StrongUpdateResult R = runStrongUpdateFlix(In, O);
    ASSERT_TRUE(R.ok()) << describe(O) << ": " << R.Error;
    EXPECT_TRUE(R.samePointsTo(Base)) << describe(O);
  }
}

TEST(PlanDifferentialTest, StrongUpdateInterpretedSourceMatrix) {
  // The FLIX-source pipeline: every lattice op and filter is an
  // interpreter call, so memoized configurations exercise the sharded
  // cache under real contention at 8 threads. Reorder is fixed off here
  // to keep the interpreted matrix affordable (reorder is crossed on the
  // native workloads above).
  PointerProgram In = generatePointerProgram(13, 300);
  StrongUpdateResult Base = runStrongUpdateFlixSource(In, legacy());
  ASSERT_TRUE(Base.ok()) << Base.Error;
  for (bool Plans : {false, true})
    for (bool Memo : {false, true})
      for (unsigned Threads : {0u, 1u, 8u}) {
        SolverOptions O;
        O.CompilePlans = Plans;
        O.EnableMemo = Memo;
        O.NumThreads = Threads;
        StrongUpdateResult R = runStrongUpdateFlixSource(In, O);
        ASSERT_TRUE(R.ok()) << describe(O) << ": " << R.Error;
        EXPECT_TRUE(R.samePointsTo(Base)) << describe(O);
      }
}

} // namespace
