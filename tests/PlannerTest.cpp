//===- tests/PlannerTest.cpp - Cost-based join planner tests --------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the cost-based adaptive join planner (DESIGN.md §16):
///
///   * cost-model unit tests on hand-built statistics — access-path
///     selectivity math, order dominance, deterministic tie-breaking;
///   * PlanLibrary re-planning — initial cost-based choose, idempotence,
///     adaptive hysteresis, wantedIndexes order-independence;
///   * a randomized plan-equivalence harness on skewed / fan-out
///     workloads: {greedy, cost-based, adaptive} × {0, 1, 8} threads must
///     all produce the model of the frozen-order sequential baseline
///     (⊔-confluence makes any valid join order yield the same minimal
///     model, so equality is exact);
///   * a StrictIndexCoverage regression: flipping the written body order
///     must not trip IndexFallbacks once plans (not an assumed order)
///     define the wanted indexes.
///
//===----------------------------------------------------------------------===//

#include "fixpoint/Plan.h"
#include "parallel/Dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::plan;

namespace {

//===----------------------------------------------------------------------===//
// Cost-model unit tests on hand-built statistics
//===----------------------------------------------------------------------===//

TEST(PlannerCostModelTest, EstimateAccessSelectivity) {
  PredStats St;
  St.LiveRows = 1000;
  uint64_t Full = 0b11;

  // Fully bound: one primary lookup, at most one row out.
  AccessEstimate E = estimateAccess(St, Full, Full, /*UseIndexes=*/true);
  EXPECT_DOUBLE_EQ(E.Cost, 1.0);
  EXPECT_DOUBLE_EQ(E.Fanout, 1.0);

  // Nothing bound: full scan, every row comes out.
  E = estimateAccess(St, 0, Full, true);
  EXPECT_DOUBLE_EQ(E.Cost, 1000.0);
  EXPECT_DOUBLE_EQ(E.Fanout, 1000.0);

  // Partially bound with an existing index: average bucket size.
  St.Indexes.push_back({0b01, /*Buckets=*/100, /*MaxBucket=*/50});
  E = estimateAccess(St, 0b01, Full, true);
  EXPECT_DOUBLE_EQ(E.Fanout, 10.0); // 1000 rows / 100 buckets

  // Partially bound, no statistics for that mask: each bound column is
  // assumed to cut the candidate set by ~sqrt(N).
  E = estimateAccess(St, 0b10, Full, true);
  EXPECT_NEAR(E.Fanout, 1000.0 / std::sqrt(1000.0), 1e-9);

  // Indexes disabled degrade every partial probe to a scan.
  E = estimateAccess(St, 0b01, Full, /*UseIndexes=*/false);
  EXPECT_DOUBLE_EQ(E.Fanout, 1000.0);

  // Empty table: optimistic one-row floor, so join orders stay
  // distinguishable when derived predicates are planned before they fill.
  PredStats Empty;
  E = estimateAccess(Empty, Full, Full, true);
  EXPECT_DOUBLE_EQ(E.Fanout, 1.0);
  E = estimateAccess(Empty, 0, Full, true);
  EXPECT_DOUBLE_EQ(E.Fanout, 1.0);
}

/// The planner's canonical win: a body written selective-atom-last.
/// Out(s, b) :- Src(s), Big(a, b), Sel(s, a).  In written order Big is
/// reached with nothing bound (full scan, huge fanout); putting Sel
/// before Big turns both into cheap probes.
struct MisorderedJoinCase {
  ValueFactory F;
  Program P{F};
  PredId Src, Big, Sel, Out;

  MisorderedJoinCase() {
    Src = P.relation("Src", 1);
    Big = P.relation("Big", 2);
    Sel = P.relation("Sel", 2);
    Out = P.relation("Out", 2);
    RuleBuilder()
        .head(Out, {"s", "b"})
        .atom(Src, {"s"})
        .atom(Big, {"a", "b"})
        .atom(Sel, {"s", "a"})
        .addTo(P);
  }

  /// Hand-built statistics: Src and Sel tiny, Big enormous.
  StatsVec stats(double BigRows) const {
    StatsVec S(P.predicates().size());
    S[Src].LiveRows = 8;
    S[Big].LiveRows = BigRows;
    S[Big].Indexes.push_back(
        {0b01, /*Buckets=*/size_t(BigRows / 4), /*MaxBucket=*/8});
    S[Sel].LiveRows = 8;
    return S;
  }
};

TEST(PlannerCostModelTest, OrderDominance) {
  MisorderedJoinCase C;
  const Rule &R = C.P.rules()[0];
  StatsVec St = C.stats(1e6);
  std::vector<bool> PreBound(R.NumVars, false);

  uint32_t Written[] = {0, 1, 2}; // Src, Big, Sel
  uint32_t Chosen[] = {0, 2, 1};  // Src, Sel, Big
  double CostWritten =
      orderCost(C.P, R, -1, false, Written, St, true, PreBound);
  double CostChosen =
      orderCost(C.P, R, -1, false, Chosen, St, true, PreBound);
  // The written order scans Big with nothing bound; the planner's order
  // probes it with `a` bound. Orders of magnitude, not noise.
  EXPECT_GT(CostWritten, 100 * CostChosen);

  // Whether the planner opens with Src or Sel (both are tiny scans), the
  // one thing a sane order guarantees is that Big is probed last, with
  // `a` already bound.
  SmallVector<uint32_t, 8> Got =
      chooseOrder(C.P, R, -1, false, St, true, PreBound);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[2], 1u);
}

TEST(PlannerCostModelTest, DriverStaysFirst) {
  MisorderedJoinCase C;
  const Rule &R = C.P.rules()[0];
  StatsVec St = C.stats(1e6);
  std::vector<bool> PreBound(R.NumVars, false);
  // Even when the driver atom is the expensive one it must open the
  // order — delta-driven evaluation feeds it from the engine.
  SmallVector<uint32_t, 8> Got =
      chooseOrder(C.P, R, /*Driver=*/1, /*DriverIsDelta=*/true, St, true,
                  PreBound);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0], 1u);
}

TEST(PlannerCostModelTest, TieBreakingIsDeterministic) {
  // Two indistinguishable atoms: the planner must keep the written order
  // (lowest body index wins ties), and repeated calls must agree.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 2);
  PredId Out = P.relation("OutP", 2);
  RuleBuilder()
      .head(Out, {"x", "z"})
      .atom(A, {"x", "y"})
      .atom(B, {"y", "z"})
      .addTo(P);
  const Rule &R = P.rules()[0];
  StatsVec St(P.predicates().size());
  St[A].LiveRows = 500;
  St[B].LiveRows = 500;
  std::vector<bool> PreBound(R.NumVars, false);

  SmallVector<uint32_t, 8> First =
      chooseOrder(P, R, -1, false, St, true, PreBound);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_EQ(First[0], 0u) << "ties must break toward the written order";
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(chooseOrder(P, R, -1, false, St, true, PreBound), First);
}

//===----------------------------------------------------------------------===//
// PlanLibrary re-planning
//===----------------------------------------------------------------------===//

TEST(PlannerReplanTest, InitialChooseThenIdempotent) {
  MisorderedJoinCase C;
  std::vector<Rule> Rules = C.P.rules();
  PlanLibrary L(C.P, Rules, /*UseIndexes=*/true);

  // Construction freezes the driver-first written order.
  EXPECT_EQ(L.costBasedPlans(), 0u);
  {
    const RulePlan &Pl = L.plan(0, -1);
    ASSERT_EQ(Pl.BodyOrder.size(), 3u);
    EXPECT_EQ(Pl.BodyOrder[0], 0u);
    EXPECT_EQ(Pl.BodyOrder[1], 1u);
  }

  // Threshold 1.0 = adopt any strict improvement (the initial choose).
  StatsVec St = C.stats(1e6);
  PlanLibrary::ReplanResult R1 = L.replanFromStats(St, 1.0);
  EXPECT_GT(R1.Replanned, 0u);
  EXPECT_GT(L.costBasedPlans(), 0u);
  {
    const RulePlan &Pl = L.plan(0, -1);
    ASSERT_EQ(Pl.BodyOrder.size(), 3u);
    EXPECT_EQ(Pl.BodyOrder[2], 1u) << "Big must move last";
  }

  // Same statistics again: nothing to improve — re-planning must be a
  // fixpoint, or adaptive checks would thrash every round.
  PlanLibrary::ReplanResult R2 = L.replanFromStats(St, 1.0);
  EXPECT_EQ(R2.Replanned, 0u);
  EXPECT_EQ(R2.RowsDivergence, 0u);
}

TEST(PlannerReplanTest, HysteresisSuppressesMarginalFlips) {
  MisorderedJoinCase C;
  std::vector<Rule> Rules = C.P.rules();
  PlanLibrary L(C.P, Rules, true);
  ASSERT_GT(L.replanFromStats(C.stats(1e6), 1.0).Replanned, 0u);

  // A mild drift in Big's size changes estimated costs but not by the
  // 4x hysteresis factor: the adaptive check must hold the current plan
  // and report the drift it measured.
  PlanLibrary::ReplanResult R = L.replanFromStats(C.stats(1.3e6), 4.0);
  EXPECT_EQ(R.Replanned, 0u);
  EXPECT_EQ(R.RowsDivergence, uint64_t(0.3e6));
}

TEST(PlannerReplanTest, WantedIndexesIsOrderIndependent) {
  // The same join written in two body orders: after cost-based planning
  // both compile to the same evaluation orders, so the masks the static
  // index analyses must pre-build are identical. This is the
  // StrictIndexCoverage satellite: wanted indexes are read off compiled
  // plans, never off an assumed driver-first order.
  auto build = [](Program &P, bool Flipped) {
    PredId Src = P.relation("Src", 1);
    PredId Big = P.relation("Big", 2);
    PredId Sel = P.relation("Sel", 2);
    PredId Out = P.relation("Out", 2);
    RuleBuilder B;
    B.head(Out, {"s", "b"}).atom(Src, {"s"});
    if (Flipped)
      B.atom(Sel, {"s", "a"}).atom(Big, {"a", "b"});
    else
      B.atom(Big, {"a", "b"}).atom(Sel, {"s", "a"});
    B.addTo(P);
    return std::array<PredId, 4>{Src, Big, Sel, Out};
  };

  ValueFactory F1, F2;
  Program P1(F1), P2(F2);
  build(P1, false);
  build(P2, true);

  auto masksOf = [](const Program &P, StatsVec St) {
    std::vector<Rule> Rules = P.rules();
    PlanLibrary L(P, Rules, true);
    L.replanFromStats(St, 1.0);
    std::vector<std::vector<uint64_t>> Masks(P.predicates().size());
    L.wantedIndexes(Masks);
    return Masks;
  };

  StatsVec St(P1.predicates().size());
  St[1].LiveRows = 1e6; // Big
  St[0].LiveRows = St[2].LiveRows = 8;
  EXPECT_EQ(masksOf(P1, St), masksOf(P2, St));
}

//===----------------------------------------------------------------------===//
// Randomized plan-equivalence harness
//===----------------------------------------------------------------------===//

/// A skewed, fan-out-heavy workload the planner actually reorders:
/// transitive closure over a hub-dominated graph feeding a 3-atom join
/// whose written order visits the big relation first.
///
///   Path(x,y) :- Edge(x,y).
///   Path(x,z) :- Path(x,y), Edge(y,z).
///   Hit(x,w)  :- Path(x,y), Fan(z,w), Mid(y,z).
struct SkewWorkload {
  ValueFactory F;
  std::vector<std::array<int, 2>> EdgeRows, MidRows, FanRows;
  PredId Edge = 0, Path = 0, Mid = 0, Fan = 0, Hit = 0;

  /// \p Skew picks hub-dominated (true) or uniform-ish (false) shapes.
  SkewWorkload(unsigned Seed, bool Skew) {
    std::mt19937 Rng(Seed);
    int Nodes = 60;
    auto Rand = [&](int N) { return int(Rng() % unsigned(N)); };
    if (Skew) {
      // Star: hub 0 owns most edges, a few feeders point at the hub.
      for (int I = 1; I < Nodes; ++I)
        EdgeRows.push_back({0, I});
      for (int I = 0; I < 8; ++I)
        EdgeRows.push_back({Nodes + I, 0});
    }
    for (int I = 0; I < (Skew ? 40 : 150); ++I)
      EdgeRows.push_back({Rand(Nodes), Rand(Nodes)});
    // Mid: sparse bridge. Fan: large fan-out relation.
    for (int I = 0; I < 30; ++I)
      MidRows.push_back({Rand(Nodes), Rand(8)});
    for (int I = 0; I < (Skew ? 600 : 200); ++I)
      FanRows.push_back({Rand(8), Rand(500)});
  }

  Program build() {
    Program P(F);
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    Mid = P.relation("Mid", 2);
    Fan = P.relation("Fan", 2);
    Hit = P.relation("Hit", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    RuleBuilder()
        .head(Hit, {"x", "w"})
        .atom(Path, {"x", "y"})
        .atom(Fan, {"z", "w"})
        .atom(Mid, {"y", "z"})
        .addTo(P);
    for (auto [A, B] : EdgeRows)
      P.addFact(Edge, {F.integer(A), F.integer(B)});
    for (auto [A, B] : MidRows)
      P.addFact(Mid, {F.integer(A), F.integer(B)});
    for (auto [A, B] : FanRows)
      P.addFact(Fan, {F.integer(A), F.integer(B)});
    return P;
  }

  /// Full model of every derived predicate, sorted for exact comparison
  /// (values are hash-consed through the shared factory F).
  using Model = std::vector<std::vector<std::vector<Value>>>;
  Model solve(const SolverOptions &O, SolveStats *OutStats = nullptr) {
    Program P = build();
    return solveWith(P, O, [&](const auto &S, const SolveStats &St) {
      EXPECT_TRUE(St.ok()) << St.Error;
      if (OutStats)
        *OutStats = St;
      Model M;
      for (PredId Pr : {Path, Hit}) {
        std::vector<std::vector<Value>> Rows = S.tuples(Pr);
        std::sort(Rows.begin(), Rows.end());
        M.push_back(std::move(Rows));
      }
      return M;
    });
  }
};

/// The planner-mode matrix: frozen greedy orders, cost-based initial
/// choose only, and adaptive with an aggressive re-plan threshold.
struct PlannerMode {
  const char *Name;
  bool CostBased;
  double Threshold;
};
constexpr PlannerMode Modes[] = {
    {"greedy", false, 0.0},
    {"cost", true, 0.0},
    {"adaptive", true, 1.5},
};

std::string describe(const PlannerMode &M, unsigned Threads) {
  return std::string(M.Name) + " threads=" + std::to_string(Threads);
}

TEST(PlannerEquivalenceTest, RandomizedSkewedWorkloads) {
  for (unsigned Seed : {11u, 23u, 47u}) {
    for (bool Skew : {true, false}) {
      SkewWorkload W(Seed, Skew);
      SolverOptions Base;
      Base.CostBasedPlans = false;
      SkewWorkload::Model Expected = W.solve(Base);
      ASSERT_FALSE(Expected[0].empty());
      for (const PlannerMode &M : Modes) {
        for (unsigned Threads : {0u, 1u, 8u}) {
          SolverOptions O;
          O.CostBasedPlans = M.CostBased;
          O.ReplanThreshold = M.Threshold;
          O.NumThreads = Threads;
          SolveStats St;
          SkewWorkload::Model Got = W.solve(O, &St);
          EXPECT_EQ(Got, Expected)
              << describe(M, Threads) << " seed=" << Seed
              << " skew=" << Skew;
          if (!M.CostBased) {
            EXPECT_EQ(St.CostBasedPlans, 0u) << describe(M, Threads);
          }
        }
      }
    }
  }
}

TEST(PlannerEquivalenceTest, CostPlannerReordersTheSkewedJoin) {
  // Sanity that the matrix above actually exercises different plans: on
  // the skewed workload the cost-based planner must change at least one
  // (rule, driver) order away from the frozen one.
  SkewWorkload W(11, /*Skew=*/true);
  SolverOptions O;
  SolveStats St;
  W.solve(O, &St);
  EXPECT_GT(St.CostBasedPlans, 0u);
}

//===----------------------------------------------------------------------===//
// StrictIndexCoverage under flipped written orders
//===----------------------------------------------------------------------===//

TEST(PlannerStrictCoverageTest, FlippedBodyOrdersDontTripFallbacks) {
  // Both written orders of the 3-atom join, solved by the parallel
  // engine under --strict-index-coverage semantics: every probe the
  // cost-chosen plans perform must hit a pre-built index. A fallback
  // here means the wanted-index analysis assumed an order the planner
  // did not pick (debug builds would assert inside the workers).
  for (bool Flipped : {false, true}) {
    ValueFactory F;
    Program P(F);
    PredId Src = P.relation("Src", 1);
    PredId Big = P.relation("Big", 2);
    PredId Sel = P.relation("Sel", 2);
    PredId Out = P.relation("Out", 2);
    RuleBuilder B;
    B.head(Out, {"s", "b"}).atom(Src, {"s"});
    if (Flipped)
      B.atom(Sel, {"s", "a"}).atom(Big, {"a", "b"});
    else
      B.atom(Big, {"a", "b"}).atom(Sel, {"s", "a"});
    B.addTo(P);

    std::mt19937 Rng(99);
    for (int I = 0; I < 4; ++I)
      P.addFact(Src, {F.integer(I)});
    for (int I = 0; I < 2000; ++I)
      P.addFact(Big, {F.integer(int(Rng() % 64)),
                      F.integer(int(Rng() % 1000))});
    for (int I = 0; I < 4; ++I)
      P.addFact(Sel, {F.integer(I), F.integer(int(Rng() % 64))});

    SolverOptions O;
    O.NumThreads = 4;
    O.StrictIndexCoverage = true;
    O.ReplanThreshold = 1.0; // re-check every round: worst case for drift
    ParallelSolver S(P, O);
    SolveStats St = S.solve();
    ASSERT_TRUE(St.ok()) << St.Error;
    EXPECT_EQ(St.IndexFallbacks, 0u) << "flipped=" << Flipped;
    EXPECT_GT(S.table(Out).size(), 0u);
  }
}

} // namespace
