//===- tests/ProvenanceTest.cpp - derivation-tracking tests ----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"

#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

SolverOptions withProvenance() {
  SolverOptions Opts;
  Opts.TrackProvenance = true;
  return Opts;
}

TEST(ProvenanceTest, FactsExplainAsFacts) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  P.addFact(A, {F.integer(1)});
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());
  Value Key[1] = {F.integer(1)};
  const Derivation *D = S.explain(A, Key);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->RuleIndex, Derivation::FromFact);
  EXPECT_TRUE(D->Premises.empty());
  std::string Text = S.explainString(A, Key);
  EXPECT_NE(Text.find("<- fact"), std::string::npos);
}

TEST(ProvenanceTest, TransitiveClosureChain) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P); // 0
  RuleBuilder()                                                        // 1
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  P.addFact(Edge, {F.integer(1), F.integer(2)});
  P.addFact(Edge, {F.integer(2), F.integer(3)});
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());

  Value Key13[2] = {F.integer(1), F.integer(3)};
  const Derivation *D = S.explain(Path, Key13);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->RuleIndex, 1u); // the recursive rule
  ASSERT_EQ(D->Premises.size(), 2u);
  EXPECT_EQ(D->Premises[0].Pred, Path);
  EXPECT_EQ(D->Premises[0].Key, F.tuple({F.integer(1), F.integer(2)}));
  EXPECT_EQ(D->Premises[1].Pred, Edge);
  EXPECT_EQ(D->Premises[1].Key, F.tuple({F.integer(2), F.integer(3)}));

  // The rendered tree bottoms out at facts.
  std::string Text = S.explainString(Path, Key13);
  EXPECT_NE(Text.find("Path(1, 3)"), std::string::npos);
  EXPECT_NE(Text.find("rule #1"), std::string::npos);
  EXPECT_NE(Text.find("Edge(1, 2)"), std::string::npos);
  EXPECT_NE(Text.find("<- fact"), std::string::npos);
}

TEST(ProvenanceTest, LatticeDerivationShowsLastIncrease) {
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).addTo(P);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(A, std::initializer_list<Value>{}, L.even());
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());
  // B joined to ⊤; its derivation points at the (⊤-valued) A cell.
  const Derivation *D = S.explain(B, std::span<const Value>{});
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->RuleIndex, 0u);
  ASSERT_EQ(D->Premises.size(), 1u);
  EXPECT_EQ(D->Premises[0].Pred, A);
  EXPECT_EQ(D->Premises[0].LatValue, L.top());
  std::string Text = S.explainString(B, std::span<const Value>{});
  EXPECT_NE(Text.find("Parity.Top"), std::string::npos);
}

TEST(ProvenanceTest, DepthLimitTruncates) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  for (int I = 0; I < 10; ++I)
    P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());
  Value Key[2] = {F.integer(0), F.integer(10)};
  std::string Shallow = S.explainString(Path, Key, /*Depth=*/1);
  EXPECT_NE(Shallow.find("..."), std::string::npos);
  std::string Deep = S.explainString(Path, Key, /*Depth=*/20);
  EXPECT_EQ(Deep.find("..."), std::string::npos);
  EXPECT_NE(Deep.find("Edge(0, 1)"), std::string::npos);
}

TEST(ProvenanceTest, UntrackedReturnsNull) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  P.addFact(A, {F.integer(1)});
  Solver S(P); // provenance off
  ASSERT_TRUE(S.solve().ok());
  Value Key[1] = {F.integer(1)};
  EXPECT_EQ(S.explain(A, Key), nullptr);
  EXPECT_NE(S.explainString(A, Key).find("not tracked"),
            std::string::npos);
}

TEST(ProvenanceTest, AbsentCellReturnsNull) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  P.addFact(A, {F.integer(1)});
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());
  Value Key[1] = {F.integer(99)};
  EXPECT_EQ(S.explain(A, Key), nullptr);
}

TEST(ProvenanceTest, NegationAndFiltersAreNotPremises) {
  // Negated atoms and filters contribute no premise rows (there is no
  // witness tuple to point at).
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId C = P.relation("C", 1);
  FnId Pos = P.function("pos", 1, FnRole::Filter,
                        [&F](std::span<const Value> Args) {
                          return F.boolean(Args[0].asInt() > 0);
                        });
  RuleBuilder()
      .head(C, {"x"})
      .atom(A, {"x"})
      .negated(B, {"x"})
      .filter(Pos, {"x"})
      .addTo(P);
  P.addFact(A, {F.integer(5)});
  Solver S(P, withProvenance());
  ASSERT_TRUE(S.solve().ok());
  Value Key[1] = {F.integer(5)};
  const Derivation *D = S.explain(C, Key);
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Premises.size(), 1u);
  EXPECT_EQ(D->Premises[0].Pred, A);
}

} // namespace
