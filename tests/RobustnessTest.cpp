//===- tests/RobustnessTest.cpp - frontend robustness ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// Fuzz-style robustness: the lexer/parser/checker must never crash and
/// must always terminate with diagnostics on garbage, truncated and
/// mutated inputs. (A compiler's first duty on bad input is a good error,
/// not a segfault.)
///
//===----------------------------------------------------------------------===//

#include "lang/Compiler.h"

#include <gtest/gtest.h>

#include <random>

using namespace flix;

namespace {

/// Compiling must terminate and either succeed or produce diagnostics —
/// never crash.
void mustNotCrash(const std::string &Src) {
  ValueFactory F;
  FlixCompiler C(F);
  bool Ok = C.compile(Src);
  if (!Ok) {
    EXPECT_TRUE(C.hasErrors()) << "failed without diagnostics on: " << Src;
  }
}

TEST(RobustnessTest, EmptyAndWhitespaceInputs) {
  mustNotCrash("");
  mustNotCrash("   \n\t\n");
  mustNotCrash("// only a comment\n");
  mustNotCrash("/* unterminated");
}

TEST(RobustnessTest, GarbageBytes) {
  std::mt19937_64 Rng(2016);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Src;
    size_t Len = Rng() % 200;
    for (size_t I = 0; I < Len; ++I)
      Src.push_back(static_cast<char>(' ' + Rng() % 95));
    mustNotCrash(Src);
  }
}

TEST(RobustnessTest, TokenSoup) {
  // Valid tokens in random order.
  static const char *Tokens[] = {
      "enum", "case",  "def",  "match", "with", "let",  "rel",  "lat",
      "if",   "else",  "true", "false", "(",    ")",    "{",    "}",
      ",",    ";",     ".",    ":",     ":-",   "<-",   "=>",   "=",
      "==",   "!=",    "<",    ">",     "+",    "-",    "*",    "/",
      "!",    "#{",    "_",    "x",     "Foo",  "Bar",  "42",   "\"s\"",
      "Set",  "[",     "]",    "Int",   "Str",  "Bool", "ext"};
  std::mt19937_64 Rng(99);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Src;
    size_t Len = 5 + Rng() % 60;
    for (size_t I = 0; I < Len; ++I) {
      Src += Tokens[Rng() % (sizeof(Tokens) / sizeof(Tokens[0]))];
      Src += ' ';
    }
    mustNotCrash(Src);
  }
}

TEST(RobustnessTest, TruncatedValidProgram) {
  const std::string Full = R"flix(
enum Parity { case Top, case Even, case Odd, case Bot }
def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case _ => false
}
def lub(e1: Parity, e2: Parity): Parity = e1;
def glb(e1: Parity, e2: Parity): Parity = e2;
let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
lat A(x: Str, Parity<>);
A("k", Parity.Odd).
A(x, p) :- A(x, p).
)flix";
  // Every prefix must be handled gracefully.
  for (size_t Len = 0; Len < Full.size(); Len += 7)
    mustNotCrash(Full.substr(0, Len));
}

TEST(RobustnessTest, MutatedValidProgram) {
  const std::string Full = "rel Edge(x: Int, y: Int);\n"
                           "rel Path(x: Int, y: Int);\n"
                           "Edge(1, 2).\n"
                           "Path(x, y) :- Edge(x, y).\n"
                           "Path(x, z) :- Path(x, y), Edge(y, z).\n";
  std::mt19937_64 Rng(7);
  for (int Round = 0; Round < 100; ++Round) {
    std::string Src = Full;
    // Flip, delete or insert a few characters.
    for (int K = 0; K < 3; ++K) {
      size_t Pos = Rng() % Src.size();
      switch (Rng() % 3) {
      case 0:
        Src[Pos] = static_cast<char>(' ' + Rng() % 95);
        break;
      case 1:
        Src.erase(Pos, 1);
        break;
      default:
        Src.insert(Pos, 1, static_cast<char>(' ' + Rng() % 95));
        break;
      }
    }
    mustNotCrash(Src);
  }
}

TEST(RobustnessTest, DeeplyNestedExpressions) {
  // Deep but bounded nesting must not blow the stack.
  std::string Src = "def f(x: Int): Int = ";
  for (int I = 0; I < 200; ++I)
    Src += "(1 + ";
  Src += "x";
  for (int I = 0; I < 200; ++I)
    Src += ")";
  Src += ";";
  mustNotCrash(Src);
}

} // namespace
