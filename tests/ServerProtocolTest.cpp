//===- tests/ServerProtocolTest.cpp - flixd server tests ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The server subsystem's test suite (DESIGN.md S14), in four layers:
//
//   1. JSON codec round-trips and strictness (truncated input, depth
//      bombs, int64 exactness, escape handling).
//   2. Request decoding: op mapping, id echo, deadline_ms semantics
//      (non-positive deadlines are expired on arrival).
//   3. handleLine() request-core behavior without sockets: structured
//      errors for malformed requests, compile errors, bad facts,
//      admission rejection, deadline-exceeded replies; load / mutate /
//      query / stats round-trips.
//   4. Loopback socket tests against a real listening server — framing,
//      oversized-line handling, shutdown — capped by the concurrency
//      test: 8 client threads mixing updates and queries, then a
//      differential check of the server's Dist lattice against a
//      from-scratch Solver::solve() on the server's own final Edge set
//      (the ISSUE's zero-divergence acceptance gate; run under TSan in
//      CI's server-smoke job).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/LoadDriver.h"
#include "server/Server.h"

#include "fixpoint/Solver.h"
#include "lang/Compiler.h"

#include "gtest/gtest.h"

#include <set>
#include <thread>

using namespace flix;
using namespace flix::server;

//===----------------------------------------------------------------------===//
// 1. JSON codec
//===----------------------------------------------------------------------===//

namespace {

Json parseOk(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_TRUE(parseJson(Text, J, Err)) << Text << ": " << Err;
  return J;
}

std::string parseErr(const std::string &Text) {
  Json J;
  std::string Err;
  EXPECT_FALSE(parseJson(Text, J, Err)) << Text;
  return Err;
}

} // namespace

TEST(ServerJson, ScalarRoundTrips) {
  EXPECT_EQ(writeJson(parseOk("null")), "null");
  EXPECT_EQ(writeJson(parseOk("true")), "true");
  EXPECT_EQ(writeJson(parseOk("false")), "false");
  EXPECT_EQ(writeJson(parseOk("0")), "0");
  EXPECT_EQ(writeJson(parseOk("-42")), "-42");
  EXPECT_EQ(writeJson(parseOk("\"hi\"")), "\"hi\"");
  EXPECT_EQ(writeJson(parseOk("[1,2,3]")), "[1,2,3]");
  EXPECT_EQ(writeJson(parseOk("{\"a\":1,\"b\":[true,null]}")),
            "{\"a\":1,\"b\":[true,null]}");
}

TEST(ServerJson, Int64Exact) {
  Json J = parseOk("9223372036854775807");
  ASSERT_TRUE(J.isInt());
  EXPECT_EQ(J.Int, INT64_MAX);
  EXPECT_EQ(writeJson(J), "9223372036854775807");
  J = parseOk("-9223372036854775808");
  ASSERT_TRUE(J.isInt());
  EXPECT_EQ(J.Int, INT64_MIN);
  // Beyond int64: still a number, degraded to double.
  J = parseOk("99223372036854775807");
  EXPECT_FALSE(J.isInt());
  EXPECT_TRUE(J.isNum());
}

TEST(ServerJson, StringEscapes) {
  Json J = parseOk(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(J.isStr());
  EXPECT_EQ(J.Str, "a\"b\\c\nd\teA");
  // Control characters are escaped on the way out.
  EXPECT_EQ(writeJson(Json::str("x\ny\x01")), "\"x\\ny\\u0001\"");
  // Non-ASCII \u escapes become UTF-8.
  EXPECT_EQ(parseOk(R"("é")").Str, "\xc3\xa9");
}

TEST(ServerJson, ObjectOrderPreservedAndGet) {
  Json J = parseOk("{\"z\":1,\"a\":2}");
  ASSERT_TRUE(J.isObj());
  EXPECT_EQ(J.Obj[0].first, "z");
  ASSERT_NE(J.get("a"), nullptr);
  EXPECT_EQ(J.get("a")->Int, 2);
  EXPECT_EQ(J.get("missing"), nullptr);
}

TEST(ServerJson, RejectsMalformed) {
  EXPECT_NE(parseErr(""), "");
  EXPECT_NE(parseErr("{\"op\": \"pi"), ""); // truncated string
  EXPECT_NE(parseErr("{\"op\": }"), "");
  EXPECT_NE(parseErr("[1, 2"), "");
  EXPECT_NE(parseErr("1 2"), "");          // trailing garbage
  EXPECT_NE(parseErr("{\"a\":1,}"), "");
  EXPECT_NE(parseErr("\"raw\x01control\""), "");
  EXPECT_NE(parseErr("nulll"), "");
}

TEST(ServerJson, DepthBombRejected) {
  std::string Bomb(5000, '[');
  std::string Err = parseErr(Bomb);
  EXPECT_NE(Err.find("nesting"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// 2. Request decoding
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, DecodesOps) {
  ErrCode Code;
  std::string Err;
  auto R = decodeRequest("{\"op\":\"ping\",\"id\":7}", Code, Err);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Operation, Op::Ping);
  ASSERT_TRUE(R->Id.isInt());
  EXPECT_EQ(R->Id.Int, 7);
  EXPECT_FALSE(R->DL.active());
}

TEST(ServerProtocol, UnknownAndMissingOp) {
  ErrCode Code;
  std::string Err;
  EXPECT_FALSE(decodeRequest("{\"op\":\"fly\"}", Code, Err).has_value());
  EXPECT_EQ(Code, ErrCode::UnknownOp);
  EXPECT_FALSE(decodeRequest("{\"id\":1}", Code, Err).has_value());
  EXPECT_EQ(Code, ErrCode::BadRequest);
  EXPECT_FALSE(decodeRequest("[1,2]", Code, Err).has_value());
  EXPECT_EQ(Code, ErrCode::BadRequest);
  EXPECT_FALSE(decodeRequest("{\"op\"", Code, Err).has_value());
  EXPECT_EQ(Code, ErrCode::ParseError);
}

TEST(ServerProtocol, NonPositiveDeadlineExpiresOnArrival) {
  ErrCode Code;
  std::string Err;
  auto R =
      decodeRequest("{\"op\":\"query\",\"deadline_ms\":0}", Code, Err);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->DL.active());
  EXPECT_TRUE(R->DL.expired());
  R = decodeRequest("{\"op\":\"query\",\"deadline_ms\":-5}", Code, Err);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->DL.expired());
  // A generous deadline is active but pending.
  R = decodeRequest("{\"op\":\"query\",\"deadline_ms\":60000}", Code,
                    Err);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->DL.active());
  EXPECT_FALSE(R->DL.expired());
}

//===----------------------------------------------------------------------===//
// 3. handleLine request core (no sockets)
//===----------------------------------------------------------------------===//

namespace {

/// Sends one request line through the core and parses the reply.
Json roundTrip(Server &S, const std::string &Line) {
  return parseOk(S.handleLine(Line));
}

bool replyOk(const Json &Reply) {
  const Json *Ok = Reply.get("ok");
  return Ok && Ok->isBool() && Ok->B;
}

std::string replyCode(const Json &Reply) {
  const Json *Code = Reply.get("code");
  return Code && Code->isStr() ? Code->Str : "";
}

const char *kPathProgram = R"(
rel Edge(x: Int, y: Int);
rel Path(x: Int, y: Int);
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
Edge(1, 2).
Edge(2, 3).
)";

std::string loadLine(const std::string &Db, const char *Source) {
  Json Req = Json::object();
  Req.set("op", Json::str("load_program"));
  Req.set("db", Json::str(Db));
  Req.set("source", Json::str(Source));
  return writeJson(Req);
}

} // namespace

TEST(ServerCore, MalformedAndUnknownRequests) {
  Server S(ServerOptions{});
  Json R = roundTrip(S, "{\"op\": \"pi");
  EXPECT_FALSE(replyOk(R));
  EXPECT_EQ(replyCode(R), "parse_error");

  R = roundTrip(S, "{\"op\":\"conjure\",\"id\":9}");
  EXPECT_FALSE(replyOk(R));
  EXPECT_EQ(replyCode(R), "unknown_op");
  ASSERT_NE(R.get("id"), nullptr); // id echoed even on errors
  EXPECT_EQ(R.get("id")->Int, 9);

  R = roundTrip(S, "42");
  EXPECT_EQ(replyCode(R), "bad_request");
}

TEST(ServerCore, OversizedLine) {
  ServerOptions O;
  O.MaxLineBytes = 64;
  Server S(O);
  std::string Long = "{\"op\":\"ping\",\"pad\":\"" +
                     std::string(200, 'x') + "\"}";
  Json R = roundTrip(S, Long);
  EXPECT_FALSE(replyOk(R));
  EXPECT_EQ(replyCode(R), "line_too_long");
}

TEST(ServerCore, LoadQueryMutateRoundTrip) {
  Server S(ServerOptions{});
  Json R = roundTrip(S, loadLine("g", kPathProgram));
  ASSERT_TRUE(replyOk(R)) << writeJson(R);

  // Scan: transitive closure of the two seeded edges.
  R = roundTrip(S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\"}");
  ASSERT_TRUE(replyOk(R)) << writeJson(R);
  ASSERT_NE(R.get("count"), nullptr);
  EXPECT_EQ(R.get("count")->Int, 3);
  EXPECT_EQ(R.get("generation")->Int, 1);

  // Point lookup on a relational predicate: found flag, no value field.
  R = roundTrip(
      S,
      "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\",\"key\":[1,3]}");
  ASSERT_TRUE(replyOk(R));
  EXPECT_TRUE(R.get("found")->B);
  EXPECT_EQ(R.get("value"), nullptr);

  // Extend the graph; the closure must grow through the new edge.
  R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":[[3,4]]}");
  ASSERT_TRUE(replyOk(R)) << writeJson(R);
  EXPECT_EQ(R.get("generation")->Int, 2);
  R = roundTrip(
      S,
      "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\",\"key\":[1,4]}");
  EXPECT_TRUE(R.get("found")->B);

  // Retract it again; the derived rows must disappear.
  R = roundTrip(S, "{\"op\":\"retract_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":[[3,4]]}");
  ASSERT_TRUE(replyOk(R));
  R = roundTrip(
      S,
      "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\",\"key\":[1,4]}");
  EXPECT_FALSE(R.get("found")->B);

  // Limit caps a scan.
  R = roundTrip(
      S,
      "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\",\"limit\":1}");
  EXPECT_EQ(R.get("rows")->Arr.size(), 1u);
  EXPECT_EQ(R.get("count")->Int, 3);
}

TEST(ServerCore, LatticeQueryCarriesValue) {
  Server S(ServerOptions{});
  ASSERT_TRUE(replyOk(roundTrip(S, loadLine("sp", benchProgramSource()))));
  Json R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"sp\",\"pred\":"
                        "\"Edge\",\"rows\":[[0,1,4],[1,2,3]]}");
  ASSERT_TRUE(replyOk(R)) << writeJson(R);
  R = roundTrip(
      S,
      "{\"op\":\"query\",\"db\":\"sp\",\"pred\":\"Dist\",\"key\":[2]}");
  ASSERT_TRUE(replyOk(R));
  ASSERT_TRUE(R.get("found")->B);
  EXPECT_EQ(R.get("value")->Int, 7);
}

TEST(ServerCore, StructuredErrors) {
  Server S(ServerOptions{});
  // No database yet.
  Json R =
      roundTrip(S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\"}");
  EXPECT_EQ(replyCode(R), "no_such_db");

  // Compile errors carry diagnostics.
  R = roundTrip(S, loadLine("bad", "rel Edge(x: Int"));
  EXPECT_EQ(replyCode(R), "compile_error");
  EXPECT_NE(R.get("error")->Str, "");

  ASSERT_TRUE(replyOk(roundTrip(S, loadLine("g", kPathProgram))));

  // Duplicate load without replace.
  R = roundTrip(S, loadLine("g", kPathProgram));
  EXPECT_EQ(replyCode(R), "db_exists");

  // Unknown predicate.
  R = roundTrip(S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Nope\"}");
  EXPECT_EQ(replyCode(R), "no_such_pred");

  // Bad fact shapes: wrong arity, wrong column type.
  R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":[[1]]}");
  EXPECT_EQ(replyCode(R), "bad_fact");
  R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":[[1,\"two\"]]}");
  EXPECT_EQ(replyCode(R), "bad_fact");
  R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":7}");
  EXPECT_EQ(replyCode(R), "bad_request");

  // Bad key shape on query.
  R = roundTrip(
      S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\",\"key\":[1]}");
  EXPECT_EQ(replyCode(R), "bad_request");
}

TEST(ServerCore, DeadlineExpiredOnArrival) {
  Server S(ServerOptions{});
  ASSERT_TRUE(replyOk(roundTrip(S, loadLine("g", kPathProgram))));
  Json R = roundTrip(S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":"
                        "\"Path\",\"deadline_ms\":0,\"id\":3}");
  EXPECT_FALSE(replyOk(R));
  EXPECT_EQ(replyCode(R), "deadline_exceeded");
  EXPECT_EQ(R.get("id")->Int, 3);
}

TEST(ServerCore, AdmissionRejectsStagedRowsBeyondBound) {
  ServerOptions O;
  O.MaxPendingFactsPerDb = 4;
  Server S(O);
  ASSERT_TRUE(replyOk(roundTrip(S, loadLine("g", kPathProgram))));
  Json R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                        "\"Edge\",\"rows\":[[1,2],[2,3],[3,4],[4,5],"
                        "[5,6]]}");
  EXPECT_FALSE(replyOk(R));
  EXPECT_EQ(replyCode(R), "overloaded");
  // Within the bound passes.
  R = roundTrip(S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":"
                   "\"Edge\",\"rows\":[[3,4]]}");
  EXPECT_TRUE(replyOk(R)) << writeJson(R);
}

TEST(ServerCore, AdmissionRejectsInflightBeyondBound) {
  ServerOptions O;
  O.MaxInflight = 0; // degenerate: every governed request is overload
  Server S(O);
  Json R = roundTrip(S, "{\"op\":\"list_dbs\"}");
  EXPECT_EQ(replyCode(R), "overloaded");
  // Ping is exempt so health checks still answer.
  EXPECT_TRUE(replyOk(roundTrip(S, "{\"op\":\"ping\"}")));
}

TEST(ServerCore, StatsListAndDrop) {
  Server S(ServerOptions{});
  ASSERT_TRUE(replyOk(roundTrip(S, loadLine("g", kPathProgram))));
  ASSERT_TRUE(replyOk(roundTrip(
      S, "{\"op\":\"add_facts\",\"db\":\"g\",\"pred\":\"Edge\","
         "\"rows\":[[5,6]]}")));

  Json R = roundTrip(S, "{\"op\":\"stats\",\"db\":\"g\"}");
  ASSERT_TRUE(replyOk(R)) << writeJson(R);
  const Json *Db = R.get("db");
  ASSERT_NE(Db, nullptr);
  EXPECT_EQ(Db->get("generation")->Int, 2);
  EXPECT_EQ(Db->get("mutation_requests")->Int, 1);
  EXPECT_EQ(Db->get("update_batches")->Int, 2); // initial solve + batch
  ASSERT_NE(Db->get("fallback_solves"), nullptr); // wired (satellite 1)
  EXPECT_EQ(Db->get("fallback_solves")->Int, 0);
  ASSERT_NE(Db->get("negation_fallbacks"), nullptr);
  EXPECT_EQ(Db->get("negation_fallbacks")->Int, 0);
  ASSERT_NE(Db->get("degraded_recoveries"), nullptr);
  EXPECT_EQ(Db->get("degraded_recoveries")->Int, 0);

  // Global stats: server block plus one entry per db.
  R = roundTrip(S, "{\"op\":\"stats\"}");
  ASSERT_TRUE(replyOk(R));
  ASSERT_NE(R.get("server"), nullptr);
  EXPECT_GE(R.get("server")->get("requests_total")->Int, 3);
  EXPECT_EQ(R.get("dbs")->Arr.size(), 1u);

  R = roundTrip(S, "{\"op\":\"list_dbs\"}");
  ASSERT_TRUE(replyOk(R));
  ASSERT_EQ(R.get("dbs")->Arr.size(), 1u);
  EXPECT_EQ(R.get("dbs")->Arr[0].Str, "g");

  ASSERT_TRUE(replyOk(roundTrip(S, "{\"op\":\"drop_db\",\"db\":\"g\"}")));
  R = roundTrip(S, "{\"op\":\"query\",\"db\":\"g\",\"pred\":\"Path\"}");
  EXPECT_EQ(replyCode(R), "no_such_db");
}

//===----------------------------------------------------------------------===//
// 4. Loopback socket tests
//===----------------------------------------------------------------------===//

namespace {

/// A started loopback server plus a connect helper; stops on scope exit.
struct LiveServer {
  Server Srv;
  explicit LiveServer(ServerOptions O = ServerOptions{}) : Srv(O) {
    std::string Err;
    Started = Srv.start(Err);
    EXPECT_TRUE(Started) << Err;
  }
  ~LiveServer() {
    Srv.stop();
    Srv.wait();
  }
  bool connect(Client &C) {
    std::string Err;
    bool Ok = C.connectTcp("127.0.0.1", Srv.port(), Err);
    EXPECT_TRUE(Ok) << Err;
    return Ok;
  }
  bool Started = false;
};

} // namespace

TEST(ServerLoopback, PingAndMalformedShareAConnection) {
  LiveServer L;
  ASSERT_TRUE(L.Started);
  Client C;
  ASSERT_TRUE(L.connect(C));
  std::string Err;
  Json Reply;

  Json Ping = Json::object();
  Ping.set("op", Json::str("ping"));
  Ping.set("id", Json::integer(1));
  ASSERT_TRUE(C.call(Ping, Reply, Err)) << Err;
  EXPECT_TRUE(replyOk(Reply));
  EXPECT_EQ(Reply.get("server")->Str, "flixd");

  // A malformed line gets a parse_error reply and the connection
  // SURVIVES (framing is still aligned on newlines).
  ASSERT_TRUE(C.callRaw("{\"op\": \"pi", Reply, Err)) << Err;
  EXPECT_EQ(replyCode(Reply), "parse_error");
  ASSERT_TRUE(C.call(Ping, Reply, Err)) << Err;
  EXPECT_TRUE(replyOk(Reply));
}

TEST(ServerLoopback, OversizedLineRepliesThenCloses) {
  ServerOptions O;
  O.MaxLineBytes = 128;
  LiveServer L(O);
  ASSERT_TRUE(L.Started);
  Client C;
  ASSERT_TRUE(L.connect(C));
  std::string Err;
  Json Reply;
  std::string Huge = "{\"op\":\"ping\",\"pad\":\"" +
                     std::string(4096, 'x') + "\"}";
  ASSERT_TRUE(C.callRaw(Huge, Reply, Err)) << Err;
  EXPECT_EQ(replyCode(Reply), "line_too_long");
  // Framing cannot resync: the server closed the connection.
  Json Ping = Json::object();
  Ping.set("op", Json::str("ping"));
  EXPECT_FALSE(C.call(Ping, Reply, Err));
}

TEST(ServerLoopback, ShutdownOpStopsTheServer) {
  LiveServer L;
  ASSERT_TRUE(L.Started);
  Client C;
  ASSERT_TRUE(L.connect(C));
  std::string Err;
  Json Reply;
  Json Req = Json::object();
  Req.set("op", Json::str("shutdown"));
  ASSERT_TRUE(C.call(Req, Reply, Err)) << Err;
  EXPECT_TRUE(replyOk(Reply));
  L.Srv.wait(); // returns: the shutdown request tore the server down
  EXPECT_TRUE(L.Srv.stopping());
  Client C2;
  std::string Err2;
  EXPECT_FALSE(C2.connectTcp("127.0.0.1", L.Srv.port(), Err2));
}

//===----------------------------------------------------------------------===//
// The concurrency + differential acceptance test: 8 clients mix updates
// and queries against a real flixd; afterwards the server's Dist model
// must exactly equal a from-scratch solve over the server's final Edge
// set.
//===----------------------------------------------------------------------===//

TEST(ServerLoopback, ConcurrentClientsMatchFromScratchSolve) {
  constexpr unsigned NumClients = 8;
  constexpr unsigned Iters = 10;
  constexpr int64_t KeySpace = 48;

  LiveServer L;
  ASSERT_TRUE(L.Started);
  {
    Client C;
    ASSERT_TRUE(L.connect(C));
    std::string Err;
    Json Reply;
    Json Load = Json::object();
    Load.set("op", Json::str("load_program"));
    Load.set("db", Json::str("g"));
    Load.set("source", Json::str(benchProgramSource()));
    ASSERT_TRUE(C.call(Load, Reply, Err)) << Err;
    ASSERT_TRUE(replyOk(Reply)) << writeJson(Reply);
  }

  // Each thread owns a disjoint x-range so its adds/retracts are
  // deterministic and non-overlapping; queries roam freely.
  std::atomic<unsigned> Failures{0};
  auto clientMain = [&](unsigned T) {
    Client C;
    std::string Err;
    if (!C.connectTcp("127.0.0.1", L.Srv.port(), Err)) {
      ++Failures;
      return;
    }
    Json Reply;
    auto mutate = [&](const char *OpName, int64_t X, int64_t C1,
                      int64_t C2) {
      Json Rows = Json::array();
      for (int64_t Yd = 1; Yd <= 2; ++Yd) {
        Json Row = Json::array();
        Row.Arr.push_back(Json::integer(X));
        Row.Arr.push_back(
            Json::integer((X + Yd * 3 + 1) % KeySpace));
        Row.Arr.push_back(Json::integer(Yd == 1 ? C1 : C2));
        Rows.Arr.push_back(std::move(Row));
      }
      Json Req = Json::object();
      Req.set("op", Json::str(OpName));
      Req.set("db", Json::str("g"));
      Req.set("pred", Json::str("Edge"));
      Req.set("rows", std::move(Rows));
      if (!C.call(Req, Reply, Err) || !replyOk(Reply))
        ++Failures;
    };
    for (unsigned I = 0; I < Iters; ++I) {
      int64_t X = int64_t(T) * (KeySpace / NumClients) +
                  int64_t(I % (KeySpace / NumClients));
      mutate("add_facts", X, 1 + int64_t(I % 7), 2 + int64_t(T % 5));
      // Retract every third batch after adding it (exact same rows).
      if (I % 3 == 2)
        mutate("retract_facts", X, 1 + int64_t(I % 7),
               2 + int64_t(T % 5));
      // Interleave snapshot queries; they must always answer.
      Json Q = Json::object();
      Q.set("op", Json::str("query"));
      Q.set("db", Json::str("g"));
      Q.set("pred", Json::str("Dist"));
      Json Key = Json::array();
      Key.Arr.push_back(Json::integer(int64_t((T * 7 + I) % KeySpace)));
      Q.set("key", std::move(Key));
      if (!C.call(Q, Reply, Err) || !replyOk(Reply))
        ++Failures;
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumClients; ++T)
    Threads.emplace_back(clientMain, T);
  for (std::thread &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0u);

  // Pull the server's final Edge set and Dist model.
  Client C;
  ASSERT_TRUE(L.connect(C));
  std::string Err;
  Json Edges, Dists;
  {
    // Json::set appends without dedup — build a fresh request per pred.
    auto scan = [](const char *Pred) {
      Json Q = Json::object();
      Q.set("op", Json::str("query"));
      Q.set("db", Json::str("g"));
      Q.set("pred", Json::str(Pred));
      return Q;
    };
    ASSERT_TRUE(C.call(scan("Edge"), Edges, Err)) << Err;
    ASSERT_TRUE(replyOk(Edges));
    ASSERT_TRUE(C.call(scan("Dist"), Dists, Err)) << Err;
    ASSERT_TRUE(replyOk(Dists));
  }

  // From-scratch reference: same program, the server's Edge rows as
  // input facts, a fresh one-shot Solver.
  ValueFactory F;
  FlixCompiler Scratch(F);
  ASSERT_TRUE(Scratch.compile(benchProgramSource(), "scratch.flix"))
      << Scratch.diagnostics();
  for (const Json &Row : Edges.get("rows")->Arr) {
    ASSERT_EQ(Row.Arr.size(), 3u);
    Value T[3] = {F.integer(Row.Arr[0].Int), F.integer(Row.Arr[1].Int),
                  F.integer(Row.Arr[2].Int)};
    ASSERT_TRUE(Scratch.addFact("Edge", T));
  }
  Solver Ref(Scratch.program());
  ASSERT_TRUE(Ref.solve().ok());

  std::set<std::pair<int64_t, int64_t>> Expected, Actual;
  auto DistId = Scratch.predicate("Dist");
  ASSERT_TRUE(DistId.has_value());
  for (const auto &Row : Ref.tuples(*DistId))
    Expected.emplace(Row[0].asInt(), Row[1].asInt());
  for (const Json &Row : Dists.get("rows")->Arr) {
    ASSERT_EQ(Row.Arr.size(), 2u);
    Actual.emplace(Row.Arr[0].Int, Row.Arr[1].Int);
  }
  EXPECT_EQ(Expected, Actual)
      << "server Dist diverged from the from-scratch solve ("
      << Expected.size() << " expected rows, " << Actual.size()
      << " actual)";

  // The server's own accounting: every mutation landed, no fallbacks
  // (the program has no negation), coalescing bookkeeping consistent.
  Json Stats;
  Json Q = Json::object();
  Q.set("op", Json::str("stats"));
  Q.set("db", Json::str("g"));
  ASSERT_TRUE(C.call(Q, Stats, Err)) << Err;
  ASSERT_TRUE(replyOk(Stats));
  const Json *Db = Stats.get("db");
  ASSERT_NE(Db, nullptr);
  EXPECT_EQ(Db->get("fallback_solves")->Int, 0);
  EXPECT_EQ(Db->get("negation_fallbacks")->Int, 0);
  EXPECT_EQ(Db->get("pending_rows")->Int, 0);
  int64_t Mutations = Db->get("mutation_requests")->Int;
  int64_t Batches = Db->get("update_batches")->Int;
  EXPECT_EQ(Mutations,
            int64_t(NumClients * (Iters + Iters / 3)));
  EXPECT_GE(Batches, 2);        // initial solve + at least one batch
  EXPECT_LE(Batches, Mutations + 1); // coalescing never inflates
}
