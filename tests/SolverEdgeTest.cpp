//===- tests/SolverEdgeTest.cpp - solver edge-case tests -------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"

#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

TEST(SolverEdgeTest, IterationLimitReported) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  for (int I = 0; I < 50; ++I)
    P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  SolverOptions Opts;
  Opts.MaxIterations = 2;
  Solver S(P, Opts);
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::IterationLimit);
  // Partial results are still a sound under-approximation.
  EXPECT_TRUE(S.contains(Path, {F.integer(0), F.integer(1)}));
}

TEST(SolverEdgeTest, BinderReturningEmptySet) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId R = P.relation("R", 1);
  FnId Empty = P.function("empty", 1, FnRole::Binder,
                          [&F](std::span<const Value>) {
                            return F.emptySet();
                          });
  RuleBuilder().head(R, {"d"}).atom(A, {"n"}).bind({"d"}, Empty, {"n"})
      .addTo(P);
  P.addFact(A, {F.integer(1)});
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(R).size(), 0u);
}

TEST(SolverEdgeTest, BinderRebindsExistingVariableAsEqualityCheck) {
  // d already bound by the atom: only matching elements survive.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId R = P.relation("R", 1);
  FnId Succs = P.function("succs", 1, FnRole::Binder,
                          [&F](std::span<const Value> Args) {
                            return F.set({F.integer(Args[0].asInt() + 1)});
                          });
  // R(d) :- A(n, d), d <- succs(n).  Keeps rows where d == n + 1.
  RuleBuilder()
      .head(R, {"d"})
      .atom(A, {"n", "d"})
      .bind({"d"}, Succs, {"n"})
      .addTo(P);
  P.addFact(A, {F.integer(1), F.integer(2)}); // 2 == 1+1: kept
  P.addFact(A, {F.integer(1), F.integer(5)}); // 5 != 1+1: dropped
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.integer(2)}));
  EXPECT_FALSE(S.contains(R, {F.integer(5)}));
}

TEST(SolverEdgeTest, ConstantOnlyFilterRule) {
  // A rule whose filter has no variable arguments at all.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId R = P.relation("R", 1);
  FnId Yes = P.function("yes", 1, FnRole::Filter,
                        [&F](std::span<const Value> Args) {
                          return F.boolean(Args[0].asInt() == 7);
                        });
  RuleBuilder()
      .head(R, {"x"})
      .atom(A, {"x"})
      .filter(Yes, {RuleBuilder::Spec(F.integer(7))})
      .addTo(P);
  P.addFact(A, {F.integer(1)});
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.integer(1)}));
}

TEST(SolverEdgeTest, WideKeyPredicates) {
  // Six key columns: exercises multi-bit index masks.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 6);
  PredId B = P.relation("B", 2);
  PredId R = P.relation("R", 2);
  RuleBuilder()
      .head(R, {"a", "f"})
      .atom(B, {"a", "c"})
      .atom(A, {"a", "b", "c", "d", "e", "f"})
      .addTo(P);
  auto N = [&](int I) { return F.integer(I); };
  for (int I = 0; I < 10; ++I)
    P.addFact(A, {N(I), N(1), N(I + 1), N(3), N(4), N(I * 10)});
  P.addFact(B, {N(2), N(3)});
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(R).size(), 1u);
  EXPECT_TRUE(S.contains(R, {N(2), N(20)}));
}

TEST(SolverEdgeTest, ValidateRejectsNegatedLatticeAtomInIR) {
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 2, &L);
  PredId N = P.relation("N", 1);
  PredId R = P.relation("R", 1);
  RuleBuilder()
      .head(R, {"x"})
      .atom(N, {"x"})
      .negated(A, {"x", "_"})
      .addTo(P);
  Solver S(P);
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Error);
  EXPECT_NE(St.Error.find("negated atom on lattice"), std::string::npos);
}

TEST(SolverEdgeTest, SelfJoinOnSamePredicate) {
  // R(x, z) :- A(x, y), A(y, z): the same table drives both atoms.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId R = P.relation("R", 2);
  RuleBuilder()
      .head(R, {"x", "z"})
      .atom(A, {"x", "y"})
      .atom(A, {"y", "z"})
      .addTo(P);
  auto N = [&](int I) { return F.integer(I); };
  P.addFact(A, {N(1), N(2)});
  P.addFact(A, {N(2), N(3)});
  P.addFact(A, {N(3), N(4)});
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(R).size(), 2u);
  EXPECT_TRUE(S.contains(R, {N(1), N(3)}));
  EXPECT_TRUE(S.contains(R, {N(2), N(4)}));
}

TEST(SolverEdgeTest, LatticeValueAsJoinKeyInAnotherPredicate) {
  // The lattice value bound from one atom is used as a key in the next.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId V = P.lattice("V", 2, &L);
  PredId Name = P.relation("Name", 2); // (parity value, label)
  PredId R = P.relation("R", 2);
  RuleBuilder()
      .head(R, {"k", "label"})
      .atom(V, {"k", "p"})
      .atom(Name, {"p", "label"})
      .addTo(P);
  P.addLatFact(V, {F.string("x")}, L.odd());
  P.addFact(Name, {L.odd(), F.string("odd")});
  P.addFact(Name, {L.top(), F.string("top")});
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.string("x"), F.string("odd")}));
  EXPECT_FALSE(S.contains(R, {F.string("x"), F.string("top")}));
}

TEST(SolverEdgeTest, IndexHintViaApi) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  P.addIndexHint(A, 0b10);
  P.addFact(A, {F.integer(1), F.integer(2)});
  Solver S(P);
  EXPECT_EQ(S.table(A).numIndexes(), 1u);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(A).size(), 1u);
}

} // namespace
