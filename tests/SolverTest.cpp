//===- tests/SolverTest.cpp - Fixpoint solver tests -----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"

#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

/// Both strategies must agree on every program; tests parameterized over
/// the strategy exercise that.
class StrategyTest : public ::testing::TestWithParam<Strategy> {
protected:
  SolverOptions opts() const {
    SolverOptions O;
    O.Strat = GetParam();
    return O;
  }
};

//===----------------------------------------------------------------------===//
// Pure Datalog
//===----------------------------------------------------------------------===//

TEST_P(StrategyTest, TransitiveClosure) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);

  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  P.addFact(Edge, {N(1), N(2)});
  P.addFact(Edge, {N(2), N(3)});
  P.addFact(Edge, {N(3), N(4)});

  Solver S(P, opts());
  SolveStats St = S.solve();
  ASSERT_TRUE(St.ok()) << St.Error;

  EXPECT_TRUE(S.contains(Path, {N(1), N(2)}));
  EXPECT_TRUE(S.contains(Path, {N(1), N(4)}));
  EXPECT_TRUE(S.contains(Path, {N(2), N(4)}));
  EXPECT_FALSE(S.contains(Path, {N(4), N(1)}));
  EXPECT_EQ(S.table(Path).size(), 6u);
}

TEST_P(StrategyTest, TransitiveClosureOnCycle) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  auto N = [&](int I) { return F.integer(I); };
  const int K = 10;
  for (int I = 0; I < K; ++I)
    P.addFact(Edge, {N(I), N((I + 1) % K)});
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(Path).size(), static_cast<size_t>(K * K));
}

TEST_P(StrategyTest, SelfLoopRuleFromPaper) {
  // §3.7: SelfLoop(x) :- Edge(x, x).
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId SelfLoop = P.relation("SelfLoop", 1);
  RuleBuilder().head(SelfLoop, {"x"}).atom(Edge, {"x", "x"}).addTo(P);
  auto N = [&](int I) { return F.integer(I); };
  P.addFact(Edge, {N(1), N(2)});
  P.addFact(Edge, {N(2), N(2)});
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_FALSE(S.contains(SelfLoop, {N(1)}));
  EXPECT_TRUE(S.contains(SelfLoop, {N(2)}));
}

TEST_P(StrategyTest, PointsToFromSection21) {
  // Figure 1 rules on the §2.1 Java fragment.
  ValueFactory F;
  Program P(F);
  PredId New = P.relation("New", 2);
  PredId Assign = P.relation("Assign", 2);
  PredId Load = P.relation("Load", 3);
  PredId Store = P.relation("Store", 3);
  PredId VPT = P.relation("VarPointsTo", 2);
  PredId HPT = P.relation("HeapPointsTo", 3);

  RuleBuilder().head(VPT, {"v1", "h1"}).atom(New, {"v1", "h1"}).addTo(P);
  RuleBuilder()
      .head(VPT, {"v1", "h2"})
      .atom(Assign, {"v1", "v2"})
      .atom(VPT, {"v2", "h2"})
      .addTo(P);
  RuleBuilder()
      .head(VPT, {"v1", "h2"})
      .atom(Load, {"v1", "v2", "f"})
      .atom(VPT, {"v2", "h1"})
      .atom(HPT, {"h1", "f", "h2"})
      .addTo(P);
  RuleBuilder()
      .head(HPT, {"h1", "f", "h2"})
      .atom(Store, {"v1", "f", "v2"})
      .atom(VPT, {"v1", "h1"})
      .atom(VPT, {"v2", "h2"})
      .addTo(P);

  auto Str = [&](const char *S) { return F.string(S); };
  P.addFact(New, {Str("o1"), Str("A")});
  P.addFact(New, {Str("o2"), Str("B")});
  P.addFact(Assign, {Str("o3"), Str("o2")});
  P.addFact(Store, {Str("o2"), Str("f"), Str("o1")});
  P.addFact(Load, {Str("r"), Str("o3"), Str("f")});

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());

  // The paper's expected answer: r may point to A.
  EXPECT_TRUE(S.contains(VPT, {Str("r"), Str("A")}));
  EXPECT_TRUE(S.contains(VPT, {Str("o3"), Str("B")}));
  EXPECT_TRUE(S.contains(HPT, {Str("B"), Str("f"), Str("A")}));
  EXPECT_FALSE(S.contains(VPT, {Str("r"), Str("B")}));
}

//===----------------------------------------------------------------------===//
// Lattice semantics
//===----------------------------------------------------------------------===//

TEST_P(StrategyTest, CellsJoinWithLub) {
  // §3.2 second example: A(1, Pos). A(2, Pos). A(2, Neg). The minimal
  // model is {A(1, Pos), A(2, Top)}.
  ValueFactory F;
  SignLattice Sign(F);
  Program P(F);
  PredId A = P.lattice("A", 2, &Sign);
  P.addLatFact(A, {F.integer(1)}, Sign.pos());
  P.addLatFact(A, {F.integer(2)}, Sign.pos());
  P.addLatFact(A, {F.integer(2)}, Sign.neg());

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(A, {F.integer(1)}), Sign.pos());
  EXPECT_EQ(S.latValue(A, {F.integer(2)}), Sign.top());
  EXPECT_EQ(S.table(A).size(), 2u);
}

TEST_P(StrategyTest, LubAcrossRulesFromPaper) {
  // §3.2 "Least Upper and Greatest Lower Bounds": facts A(Odd), B(Even);
  // rules R(x) :- A(x). R(x) :- B(x). give R(Top).
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.even());
  RuleBuilder().head(R, {"x"}).atom(A, {"x"}).addTo(P);
  RuleBuilder().head(R, {"x"}).atom(B, {"x"}).addTo(P);

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.top());
}

TEST_P(StrategyTest, GlbWithinRuleFromPaper) {
  // Same facts; rule R(x) :- A(x), B(x). gives R(Bot) — which the engine
  // does not materialize, so the R cell stays implicitly bottom.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.even());
  RuleBuilder().head(R, {"x"}).atom(A, {"x"}).atom(B, {"x"}).addTo(P);

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.bot());
  EXPECT_EQ(S.table(R).size(), 0u);
}

TEST_P(StrategyTest, GlbWithinRulePartialOverlap) {
  // When the two cells agree, the glb is the shared element.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.top());
  RuleBuilder().head(R, {"x"}).atom(A, {"x"}).atom(B, {"x"}).addTo(P);
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.odd());
}

TEST_P(StrategyTest, SemiNaiveCompactnessExample) {
  // §3.7: A(Odd). B(Even). A(x) :- B(x). R(x) :- isMaybeZero(x), A(x).
  // The A cell joins to Top, and R must be evaluated with x ↦ Top, not
  // with the stale x ↦ Even — the minimal model has R(Top).
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  FnId IsMaybeZero = P.function(
      "isMaybeZero", 1, FnRole::Filter, [&](std::span<const Value> Args) {
        return F.boolean(L.isMaybeZero(Args[0]));
      });
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.even());
  RuleBuilder().head(A, {"x"}).atom(B, {"x"}).addTo(P);
  RuleBuilder()
      .head(R, {"x"})
      .atom(A, {"x"})
      .filter(IsMaybeZero, {"x"})
      .addTo(P);

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(A, std::initializer_list<Value>{}), L.top());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.top());
}

TEST_P(StrategyTest, TransferFunctionInHead) {
  // IntVar-style abstract addition: R(sum(a, b)) :- A(a), B(b).
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 1, &L);
  PredId B = P.lattice("B", 1, &L);
  PredId R = P.lattice("R", 1, &L);
  FnId Sum = P.function("sum", 2, FnRole::Transfer,
                        [&](std::span<const Value> Args) {
                          return L.sum(Args[0], Args[1]);
                        });
  P.addLatFact(A, std::initializer_list<Value>{}, L.odd());
  P.addLatFact(B, std::initializer_list<Value>{}, L.odd());
  RuleBuilder()
      .headFn(R, {}, Sum, {"a", "b"})
      .atom(A, {"a"})
      .atom(B, {"b"})
      .addTo(P);

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(R, std::initializer_list<Value>{}), L.even());
}

TEST_P(StrategyTest, ConstantLatticeTermInBodyMatchesByLeq) {
  // A ground lattice term c in a body atom is true iff c ⊑ cell value.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.lattice("A", 2, &L);
  PredId Hit = P.relation("Hit", 1);
  P.addLatFact(A, {F.string("k1")}, L.top());
  P.addLatFact(A, {F.string("k2")}, L.even());
  // Hit(k) :- A(k, Odd). — true for k1 (Odd ⊑ Top), false for k2.
  RuleBuilder()
      .head(Hit, {"k"})
      .atom(A, {"k", RuleBuilder::Spec(L.odd())})
      .addTo(P);
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(Hit, {F.string("k1")}));
  EXPECT_FALSE(S.contains(Hit, {F.string("k2")}));
}

TEST_P(StrategyTest, ShortestPathsFromSection44) {
  // Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
  ValueFactory F;
  MinCostLattice L(F);
  Program P(F);
  PredId Edge = P.relation("Edge", 3);
  PredId Dist = P.lattice("Dist", 2, &L);
  FnId Add = P.function("addCost", 2, FnRole::Transfer,
                        [&](std::span<const Value> Args) {
                          if (L.isInfinity(Args[0]) || L.isInfinity(Args[1]))
                            return L.infinity();
                          return L.cost(Args[0].asInt() + Args[1].asInt());
                        });
  auto N = [&](int I) { return F.integer(I); };
  P.addFact(Edge, {N(1), N(2), N(4)});
  P.addFact(Edge, {N(1), N(3), N(1)});
  P.addFact(Edge, {N(3), N(2), N(1)});
  P.addFact(Edge, {N(2), N(4), N(1)});
  P.addLatFact(Dist, {N(1)}, L.cost(0));
  RuleBuilder()
      .headFn(Dist, {"y"}, Add, {"d", "c"})
      .atom(Dist, {"x", "d"})
      .atom(Edge, {"x", "y", "c"})
      .addTo(P);

  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(Dist, {N(2)}), L.cost(2)); // via 3
  EXPECT_EQ(S.latValue(Dist, {N(3)}), L.cost(1));
  EXPECT_EQ(S.latValue(Dist, {N(4)}), L.cost(3));
}

TEST_P(StrategyTest, BinderEnumeratesSetElements) {
  // R(n, d) :- A(n), d <- succs(n). where succs returns a set.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId R = P.relation("R", 2);
  FnId Succs = P.function("succs", 1, FnRole::Binder,
                          [&](std::span<const Value> Args) {
                            int64_t N = Args[0].asInt();
                            return F.set({F.integer(N + 1), F.integer(N + 2)});
                          });
  RuleBuilder()
      .head(R, {"n", "d"})
      .atom(A, {"n"})
      .bind({"d"}, Succs, {"n"})
      .addTo(P);
  P.addFact(A, {F.integer(10)});
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.integer(10), F.integer(11)}));
  EXPECT_TRUE(S.contains(R, {F.integer(10), F.integer(12)}));
  EXPECT_EQ(S.table(R).size(), 2u);
}

TEST_P(StrategyTest, BinderWithTuplePattern) {
  // (a, b) <- pairs(n) destructures 2-tuple elements.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId R = P.relation("R", 2);
  FnId Pairs = P.function(
      "pairs", 1, FnRole::Binder, [&](std::span<const Value> Args) {
        int64_t N = Args[0].asInt();
        return F.set({F.tuple({F.integer(N), F.integer(N * 2)}),
                      F.tuple({F.integer(N + 1), F.integer(N * 3)})});
      });
  RuleBuilder()
      .head(R, {"a", "b"})
      .atom(A, {"n"})
      .bind({"a", "b"}, Pairs, {"n"})
      .addTo(P);
  P.addFact(A, {F.integer(5)});
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.integer(5), F.integer(10)}));
  EXPECT_TRUE(S.contains(R, {F.integer(6), F.integer(15)}));
}

//===----------------------------------------------------------------------===//
// Stratified negation (the §7 extension)
//===----------------------------------------------------------------------===//

TEST_P(StrategyTest, StratifiedNegationComplement) {
  // Unreachable(x) :- Node(x), !Reach(x).
  ValueFactory F;
  Program P(F);
  PredId Node = P.relation("Node", 1);
  PredId Edge = P.relation("Edge", 2);
  PredId Reach = P.relation("Reach", 1);
  PredId Unreach = P.relation("Unreach", 1);
  auto N = [&](int I) { return F.integer(I); };
  RuleBuilder().head(Reach, {"x"}).atom(Edge, {RuleBuilder::Spec(N(1)), "x"}).addTo(P);
  RuleBuilder()
      .head(Reach, {"y"})
      .atom(Reach, {"x"})
      .atom(Edge, {"x", "y"})
      .addTo(P);
  RuleBuilder()
      .head(Unreach, {"x"})
      .atom(Node, {"x"})
      .negated(Reach, {"x"})
      .addTo(P);
  for (int I = 1; I <= 5; ++I)
    P.addFact(Node, {N(I)});
  P.addFact(Edge, {N(1), N(2)});
  P.addFact(Edge, {N(2), N(3)});
  P.addFact(Edge, {N(4), N(5)});

  Solver S(P, opts());
  SolveStats St = S.solve();
  ASSERT_TRUE(St.ok()) << St.Error;
  EXPECT_TRUE(S.contains(Reach, {N(2)}));
  EXPECT_TRUE(S.contains(Reach, {N(3)}));
  EXPECT_FALSE(S.contains(Reach, {N(4)}));
  EXPECT_TRUE(S.contains(Unreach, {N(4)}));
  EXPECT_TRUE(S.contains(Unreach, {N(5)}));
  EXPECT_TRUE(S.contains(Unreach, {N(1)})); // 1 has no in-edge from 1
  EXPECT_FALSE(S.contains(Unreach, {N(2)}));
}

TEST_P(StrategyTest, NonStratifiableProgramRejected) {
  // A(x) :- N(x), !B(x). B(x) :- N(x), !A(x). (§3.5)
  ValueFactory F;
  Program P(F);
  PredId N = P.relation("N", 1);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  RuleBuilder().head(A, {"x"}).atom(N, {"x"}).negated(B, {"x"}).addTo(P);
  RuleBuilder().head(B, {"x"}).atom(N, {"x"}).negated(A, {"x"}).addTo(P);
  P.addFact(N, {F.integer(1)});
  Solver S(P, opts());
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Error);
  EXPECT_NE(St.Error.find("not stratifiable"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Validation, limits, options
//===----------------------------------------------------------------------===//

TEST_P(StrategyTest, UnboundHeadVariableRejected) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId R = P.relation("R", 2);
  RuleBuilder().head(R, {"x", "y"}).atom(A, {"x"}).addTo(P);
  Solver S(P, opts());
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Error);
  EXPECT_NE(St.Error.find("unbound"), std::string::npos);
}

TEST_P(StrategyTest, TimeoutAborts) {
  // A quadratic-ish blowup with a tiny time limit must report Timeout.
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Path, {"y", "z"})
      .addTo(P);
  for (int I = 0; I < 400; ++I)
    P.addFact(Edge, {F.integer(I), F.integer((I + 1) % 400)});
  SolverOptions O = opts();
  O.TimeLimitSeconds = 0.01;
  Solver S(P, O);
  SolveStats St = S.solve();
  EXPECT_EQ(St.St, SolveStats::Status::Timeout);
}

TEST_P(StrategyTest, AnonymousVariablesAreFresh) {
  // R(x) :- A(x, _), B(_). — the two _ are independent.
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 1);
  PredId R = P.relation("R", 1);
  RuleBuilder()
      .head(R, {"x"})
      .atom(A, {"x", "_"})
      .atom(B, {"_"})
      .addTo(P);
  P.addFact(A, {F.integer(1), F.integer(10)});
  P.addFact(B, {F.integer(99)});
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(R, {F.integer(1)}));
}

TEST_P(StrategyTest, NoIndexOptionSameResult) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  for (int I = 0; I < 20; ++I)
    P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  SolverOptions O = opts();
  O.UseIndexes = false;
  Solver S(P, O);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(Path).size(), 20u * 21u / 2);
}

TEST_P(StrategyTest, ReorderBodySameResult) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 2);
  PredId R = P.relation("R", 2);
  // Deliberately bad order: B's variables are unbound first.
  RuleBuilder()
      .head(R, {"x", "z"})
      .atom(B, {"y", "z"})
      .atom(A, {"x", "y"})
      .addTo(P);
  for (int I = 0; I < 10; ++I) {
    P.addFact(A, {F.integer(I), F.integer(I + 100)});
    P.addFact(B, {F.integer(I + 100), F.integer(I + 200)});
  }
  SolverOptions O = opts();
  O.ReorderBody = true;
  Solver S(P, O);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(R).size(), 10u);
  EXPECT_TRUE(S.contains(R, {F.integer(3), F.integer(203)}));
}

TEST_P(StrategyTest, FactsOnlyProgram) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  P.addFact(A, {F.integer(1)});
  P.addFact(A, {F.integer(1)}); // duplicate facts collapse
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.table(A).size(), 1u);
}

TEST_P(StrategyTest, EmptyBodyRuleActsAsFact) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  RuleBuilder().head(A, {RuleBuilder::Spec(F.integer(7))}).addTo(P);
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.contains(A, {F.integer(7)}));
}

TEST_P(StrategyTest, MutualRecursionAcrossLatticesAndRelations) {
  // A lat predicate feeding a relation feeding the lat predicate.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId Seen = P.relation("Seen", 1);
  PredId Val = P.lattice("Val", 2, &L);
  PredId Link = P.relation("Link", 2);
  // Val(y, p) :- Link(x, y), Val(x, p).
  RuleBuilder()
      .head(Val, {"y", "p"})
      .atom(Link, {"x", "y"})
      .atom(Val, {"x", "p"})
      .addTo(P);
  // Seen(x) :- Val(x, _).
  RuleBuilder().head(Seen, {"x"}).atom(Val, {"x", "_"}).addTo(P);
  auto Str = [&](const char *S) { return F.string(S); };
  P.addFact(Link, {Str("a"), Str("b")});
  P.addFact(Link, {Str("b"), Str("c")});
  P.addLatFact(Val, {Str("a")}, L.odd());
  P.addLatFact(Val, {Str("b")}, L.even());
  Solver S(P, opts());
  ASSERT_TRUE(S.solve().ok());
  EXPECT_EQ(S.latValue(Val, {Str("b")}), L.top()); // odd ⊔ even
  EXPECT_EQ(S.latValue(Val, {Str("c")}), L.top());
  EXPECT_TRUE(S.contains(Seen, {Str("c")}));
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyTest,
                         ::testing::Values(Strategy::Naive,
                                           Strategy::SemiNaive),
                         [](const auto &Info) {
                           return Info.param == Strategy::Naive
                                      ? "Naive"
                                      : "SemiNaive";
                         });

//===----------------------------------------------------------------------===//
// Strategy-specific behavior
//===----------------------------------------------------------------------===//

TEST(SolverStatsTest, SemiNaiveDoesLessWorkThanNaive) {
  auto build = [](ValueFactory &F, Program &P) {
    PredId Edge = P.relation("Edge", 2);
    PredId Path = P.relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    for (int I = 0; I < 60; ++I)
      P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  };
  ValueFactory F1, F2;
  Program P1(F1), P2(F2);
  build(F1, P1);
  build(F2, P2);
  SolverOptions ON, OS;
  ON.Strat = Strategy::Naive;
  OS.Strat = Strategy::SemiNaive;
  Solver SN(P1, ON), SS(P2, OS);
  SolveStats StN = SN.solve(), StS = SS.solve();
  ASSERT_TRUE(StN.ok());
  ASSERT_TRUE(StS.ok());
  EXPECT_EQ(SN.table(1).size(), SS.table(1).size());
  // Naive re-derives every fact every pass; semi-naive must fire far
  // fewer rule instantiations.
  EXPECT_GT(StN.RuleFirings, 4 * StS.RuleFirings);
}

TEST(SolverStatsTest, MemoryAccountingCoversAuxiliaryStructures) {
  // SolveStats::MemoryBytes must cover everything the solver holds: it
  // is bounded below by the tables plus the interned values, and each
  // auxiliary structure — memo cache, provenance, support index — must
  // show up in it (regression for the under-accounting that ignored all
  // three).
  auto build = [](ValueFactory &F, Program &P) {
    PredId Edge = P.relation("Edge", 2);
    PredId Path = P.relation("Path", 2);
    FnId Ok = P.function("ok", 1, FnRole::Filter,
                         [&F](std::span<const Value> A) {
                           (void)A;
                           return F.boolean(true);
                         });
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .filter(Ok, {"z"})
        .addTo(P);
    for (int I = 0; I < 40; ++I)
      P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  };

  auto footprint = [&](bool Memo, bool Prov, bool Support) {
    ValueFactory F;
    Program P(F);
    build(F, P);
    SolverOptions O;
    O.EnableMemo = Memo;
    O.TrackProvenance = Prov;
    O.TrackSupport = Support;
    Solver S(P, O);
    SolveStats St = S.solve();
    EXPECT_TRUE(St.ok()) << St.Error;
    size_t TableBytes = F.memoryBytes();
    for (PredId Pr = 0; Pr < P.predicates().size(); ++Pr)
      TableBytes += S.table(Pr).memoryBytes();
    EXPECT_GE(St.MemoryBytes, TableBytes);
    return St.MemoryBytes;
  };

  size_t Bare = footprint(false, false, false);
  size_t WithMemo = footprint(true, false, false);
  size_t WithProv = footprint(true, true, false);
  size_t WithSupport = footprint(true, true, true);
  // The solves are deterministic and differ only in the structures
  // switched on, so each step adds strictly positive footprint.
  EXPECT_GT(WithMemo, Bare);
  EXPECT_GT(WithProv, WithMemo);
  EXPECT_GT(WithSupport, WithProv);
}

TEST(SolverStatsTest, IndexesAreCreatedOnDemand) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 2);
  PredId R = P.relation("R", 2);
  RuleBuilder()
      .head(R, {"x", "z"})
      .atom(A, {"x", "y"})
      .atom(B, {"y", "z"})
      .addTo(P);
  for (int I = 0; I < 10; ++I) {
    P.addFact(A, {F.integer(I), F.integer(I)});
    P.addFact(B, {F.integer(I), F.integer(I)});
  }
  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  // B is probed with its first column bound: exactly one index.
  EXPECT_EQ(S.table(B).numIndexes(), 1u);
  EXPECT_EQ(S.table(R).size(), 10u);
}

} // namespace
