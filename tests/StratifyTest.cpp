//===- tests/StratifyTest.cpp - Stratified negation tests -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Stratification unit tests: stratum assignment on relational programs,
// mixes of negation with lattice predicates, rule bucketing invariants,
// and the cycle-through-negation diagnostic. End-to-end solves verify
// that the computed strata give the stratified semantics.
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Stratify.h"

#include "fixpoint/Solver.h"
#include "runtime/Lattices.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

TEST(StratifyTest, PositiveProgramIsOneStratum) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).addTo(P);
  RuleBuilder().head(A, {"x"}).atom(B, {"x"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Strat->numStrata(), 1u);
}

TEST(StratifyTest, NegationForcesHigherStratum) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId C = P.relation("C", 1);
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).addTo(P);
  RuleBuilder().head(C, {"x"}).atom(A, {"x"}).negated(B, {"x"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R.Strat->PredStratum[C], R.Strat->PredStratum[B]);
  // Rules are grouped by head stratum.
  EXPECT_EQ(R.Strat->RulesByStratum[R.Strat->PredStratum[C]].size(), 1u);
}

TEST(StratifyTest, ChainOfNegationsBuildsStrata) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId C = P.relation("C", 1);
  PredId D = P.relation("D", 1);
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).negated(A, {"x"}).addTo(P);
  RuleBuilder().head(C, {"x"}).atom(A, {"x"}).negated(B, {"x"}).addTo(P);
  RuleBuilder().head(D, {"x"}).atom(A, {"x"}).negated(C, {"x"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok());
  EXPECT_LT(R.Strat->PredStratum[B], R.Strat->PredStratum[C]);
  EXPECT_LT(R.Strat->PredStratum[C], R.Strat->PredStratum[D]);
}

TEST(StratifyTest, NegativeCycleRejected) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId N = P.relation("N", 1);
  RuleBuilder().head(A, {"x"}).atom(N, {"x"}).negated(B, {"x"}).addTo(P);
  RuleBuilder().head(B, {"x"}).atom(N, {"x"}).negated(A, {"x"}).addTo(P);
  StratifyResult R = stratify(P);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("not stratifiable"), std::string::npos);
}

TEST(StratifyTest, NegativeSelfLoopRejected) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId N = P.relation("N", 1);
  RuleBuilder().head(A, {"x"}).atom(N, {"x"}).negated(A, {"x"}).addTo(P);
  EXPECT_FALSE(stratify(P).ok());
}

//===----------------------------------------------------------------------===//
// Negation + lattice predicate mixes
//===----------------------------------------------------------------------===//

TEST(StratifyTest, LatticeHeadOverNegatedRelation) {
  // A lattice predicate derived through a negated relational atom must
  // land strictly above the negated predicate; its positive lattice
  // dependencies stay in its own stratum.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId In = P.relation("In", 1);
  PredId Skip = P.relation("Skip", 1);
  PredId V = P.lattice("V", 2, &L);
  RuleBuilder()
      .head(V, {rv("x"), L.even()})
      .atom(In, {"x"})
      .negated(Skip, {"x"})
      .addTo(P);
  // Recursive positive lattice rule: V flows to itself.
  RuleBuilder().head(V, {"y", "v"}).atom(V, {"y", "v"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_GT(R.Strat->PredStratum[V], R.Strat->PredStratum[Skip]);
  // Both V rules live in V's stratum.
  EXPECT_EQ(R.Strat->RulesByStratum[R.Strat->PredStratum[V]].size(), 2u);
}

TEST(StratifyTest, RelationNegatingBelowLatticeChain) {
  // rel -> !rel -> lat -> lat chain: strata must be monotone along it.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId Base = P.relation("Base", 1);
  PredId Excl = P.relation("Excl", 1);
  PredId Mid = P.relation("Mid", 1);
  PredId Val = P.lattice("Val", 2, &L);
  PredId Out = P.lattice("Out", 2, &L);
  RuleBuilder()
      .head(Mid, {"x"})
      .atom(Base, {"x"})
      .negated(Excl, {"x"})
      .addTo(P);
  RuleBuilder().head(Val, {rv("x"), L.odd()}).atom(Mid, {"x"}).addTo(P);
  RuleBuilder().head(Out, {"x", "v"}).atom(Val, {"x", "v"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_GT(R.Strat->PredStratum[Mid], R.Strat->PredStratum[Excl]);
  EXPECT_GE(R.Strat->PredStratum[Val], R.Strat->PredStratum[Mid]);
  EXPECT_GE(R.Strat->PredStratum[Out], R.Strat->PredStratum[Val]);
}

TEST(StratifyTest, RuleBucketingPartitionsAllRules) {
  // Every rule appears in exactly one stratum bucket — the bucket of its
  // head — and each stratum index is within range.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  PredId C = P.relation("C", 1);
  PredId V = P.lattice("V", 2, &L);
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).addTo(P);
  RuleBuilder().head(C, {"x"}).atom(A, {"x"}).negated(B, {"x"}).addTo(P);
  RuleBuilder().head(V, {rv("x"), L.even()}).atom(C, {"x"}).addTo(P);
  RuleBuilder().head(V, {"x", "v"}).atom(V, {"x", "v"}).addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_TRUE(R.ok()) << R.Error;

  std::vector<int> Seen(P.rules().size(), 0);
  for (uint32_t S = 0; S < R.Strat->numStrata(); ++S) {
    for (uint32_t RI : R.Strat->RulesByStratum[S]) {
      ASSERT_LT(RI, P.rules().size());
      ++Seen[RI];
      EXPECT_EQ(R.Strat->PredStratum[P.rules()[RI].Head.Pred], S);
    }
  }
  for (size_t RI = 0; RI < Seen.size(); ++RI)
    EXPECT_EQ(Seen[RI], 1) << "rule " << RI << " bucketed " << Seen[RI]
                           << " times";
}

TEST(StratifyTest, CycleDiagnosticNamesAPredicate) {
  ValueFactory F;
  Program P(F);
  PredId Win = P.relation("Win", 1);
  PredId Move = P.relation("Move", 2);
  // Win(x) :- Move(x, y), !Win(y) — the classic unstratifiable game.
  RuleBuilder()
      .head(Win, {"x"})
      .atom(Move, {"x", "y"})
      .negated(Win, {"y"})
      .addTo(P);
  StratifyResult R = stratify(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("cycle through negation"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("Win"), std::string::npos) << R.Error;
}

TEST(StratifyTest, SolveRespectsStrataWithLatticeMix) {
  // End-to-end: the lattice value of V must reflect the *final* contents
  // of the negated relation — only possible if Excl's stratum is fully
  // solved before V's rule runs.
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId Base = P.relation("Base", 1);
  PredId Seed = P.relation("Seed", 1);
  PredId Excl = P.relation("Excl", 1);
  PredId V = P.lattice("V", 2, &L);
  RuleBuilder().head(Excl, {"x"}).atom(Seed, {"x"}).addTo(P);
  RuleBuilder()
      .head(V, {rv("x"), L.odd()})
      .atom(Base, {"x"})
      .negated(Excl, {"x"})
      .addTo(P);
  P.addFact(Base, {F.integer(1)});
  P.addFact(Base, {F.integer(2)});
  P.addFact(Seed, {F.integer(2)}); // Excl(2) is *derived*, not a fact

  Solver S(P);
  ASSERT_TRUE(S.solve().ok());
  EXPECT_TRUE(S.latValue(V, {F.integer(1)}) == L.odd());
  EXPECT_TRUE(S.latValue(V, {F.integer(2)}) == L.bot());
}

} // namespace
