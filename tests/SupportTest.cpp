//===- tests/SupportTest.cpp - Support library tests ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"
#include "support/Diagnostics.h"
#include "support/Hashing.h"
#include "support/SmallVector.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace flix;

//===----------------------------------------------------------------------===//
// SmallVector
//===----------------------------------------------------------------------===//

TEST(SmallVectorTest, StartsEmptyInline) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.size(), 0u);
  EXPECT_EQ(V.capacity(), 4u);
}

TEST(SmallVectorTest, PushWithinInlineCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, GrowsPastInlineCapacity) {
  SmallVector<int, 2> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, InitializerListAndEquality) {
  SmallVector<int, 4> A = {1, 2, 3};
  SmallVector<int, 4> B = {1, 2, 3};
  SmallVector<int, 4> C = {1, 2, 4};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C);
}

TEST(SmallVectorTest, CopyPreservesElements) {
  SmallVector<std::string, 2> V = {"a", "b", "c", "d"};
  SmallVector<std::string, 2> W(V);
  EXPECT_EQ(V, W);
  W.push_back("e");
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(W.size(), 5u);
}

TEST(SmallVectorTest, MoveStealsHeapBuffer) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I < 10; ++I)
    V.push_back("s" + std::to_string(I));
  const std::string *Data = V.data();
  SmallVector<std::string, 2> W(std::move(V));
  EXPECT_EQ(W.data(), Data); // heap buffer moved, not copied
  EXPECT_EQ(W.size(), 10u);
  EXPECT_TRUE(V.empty());
}

TEST(SmallVectorTest, MoveInlineElements) {
  SmallVector<std::string, 8> V = {"x", "y"};
  SmallVector<std::string, 8> W(std::move(V));
  EXPECT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0], "x");
  EXPECT_TRUE(V.empty());
}

TEST(SmallVectorTest, NonTrivialDestructorsRun) {
  auto P = std::make_shared<int>(42);
  {
    SmallVector<std::shared_ptr<int>, 2> V;
    for (int I = 0; I < 5; ++I)
      V.push_back(P);
    EXPECT_EQ(P.use_count(), 6);
  }
  EXPECT_EQ(P.use_count(), 1);
}

TEST(SmallVectorTest, PopBackAndClear) {
  SmallVector<int, 4> V = {1, 2, 3};
  V.pop_back();
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.back(), 2);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(SmallVectorTest, ResizeGrowsAndShrinks) {
  SmallVector<int, 2> V;
  V.resize(5, 7);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V[4], 7);
  V.resize(1);
  EXPECT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 7);
}

TEST(SmallVectorTest, EraseShiftsLeft) {
  SmallVector<int, 4> V = {1, 2, 3, 4};
  V.erase(V.begin() + 1);
  EXPECT_EQ(V, (SmallVector<int, 4>{1, 3, 4}));
}

TEST(SmallVectorTest, CopyAssignSelfHeapToInline) {
  SmallVector<int, 2> V = {1, 2, 3, 4, 5};
  SmallVector<int, 2> W = {9};
  W = V;
  EXPECT_EQ(W, V);
  V = V; // self-assignment
  EXPECT_EQ(V.size(), 5u);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(HashingTest, MixSpreadsBits) {
  EXPECT_NE(hashMix(0), hashMix(1));
  EXPECT_NE(hashMix(1), hashMix(2));
}

TEST(HashingTest, CombineOrderSensitive) {
  EXPECT_NE(hashValues(1, 2), hashValues(2, 1));
  EXPECT_EQ(hashValues(1, 2), hashValues(1, 2));
}

TEST(HashingTest, RangeMatchesValues) {
  uint64_t Data[] = {3, 1, 4};
  EXPECT_EQ(hashRange(std::begin(Data), std::end(Data)),
            hashValues(3, 1, 4));
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInternerTest, SameStringSameSymbol) {
  StringInterner SI;
  Symbol A = SI.intern("hello");
  Symbol B = SI.intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(SI.text(A), "hello");
}

TEST(StringInternerTest, DistinctStringsDistinctSymbols) {
  StringInterner SI;
  EXPECT_NE(SI.intern("a"), SI.intern("b"));
}

TEST(StringInternerTest, EmptyStringIsSymbolZero) {
  StringInterner SI;
  EXPECT_EQ(SI.intern("").Id, 0u);
  EXPECT_EQ(Symbol{}.Id, 0u);
}

TEST(StringInternerTest, LookupWithoutInterning) {
  StringInterner SI;
  EXPECT_EQ(SI.lookup("nope"), StringInterner::NotInterned);
  Symbol S = SI.intern("yes");
  EXPECT_EQ(SI.lookup("yes"), S.Id);
}

TEST(StringInternerTest, ManyStringsStableText) {
  StringInterner SI;
  std::vector<Symbol> Syms;
  for (int I = 0; I < 1000; ++I)
    Syms.push_back(SI.intern("str" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(SI.text(Syms[I]), "str" + std::to_string(I));
}

//===----------------------------------------------------------------------===//
// SourceManager and Diagnostics
//===----------------------------------------------------------------------===//

TEST(SourceManagerTest, LineColumnResolution) {
  SourceManager SM;
  uint32_t B = SM.addBuffer("<t>", "abc\ndef\nghi");
  EXPECT_EQ(SM.lineColumn({B, 0}).Line, 1u);
  EXPECT_EQ(SM.lineColumn({B, 0}).Column, 1u);
  EXPECT_EQ(SM.lineColumn({B, 4}).Line, 2u);
  EXPECT_EQ(SM.lineColumn({B, 6}).Column, 3u);
  EXPECT_EQ(SM.lineColumn({B, 10}).Line, 3u);
}

TEST(SourceManagerTest, LineTextExtraction) {
  SourceManager SM;
  uint32_t B = SM.addBuffer("<t>", "first\nsecond\nthird");
  EXPECT_EQ(SM.lineText({B, 7}), "second");
  EXPECT_EQ(SM.lineText({B, 0}), "first");
  EXPECT_EQ(SM.lineText({B, 17}), "third");
}

TEST(DiagnosticsTest, RenderWithCaret) {
  SourceManager SM;
  uint32_t B = SM.addBuffer("test.flix", "rel Foo(x: Int)\nbogus here\n");
  DiagnosticEngine DE(SM);
  DE.error({B, 16}, "unexpected identifier");
  EXPECT_TRUE(DE.hasErrors());
  std::string R = DE.render();
  EXPECT_NE(R.find("test.flix:2:1: error: unexpected identifier"),
            std::string::npos);
  EXPECT_NE(R.find("bogus here"), std::string::npos);
}

TEST(DiagnosticsTest, ErrorsCountedWarningsNot) {
  SourceManager SM;
  DiagnosticEngine DE(SM);
  DE.warning(SourceLoc::invalid(), "just a warning");
  EXPECT_FALSE(DE.hasErrors());
  DE.error(SourceLoc::invalid(), "boom");
  EXPECT_EQ(DE.numErrors(), 1u);
}

//===----------------------------------------------------------------------===//
// Deadline
//===----------------------------------------------------------------------===//

TEST(DeadlineTest, DefaultIsInactiveAndNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.active());
  EXPECT_FALSE(D.expired());
}

TEST(DeadlineTest, NonPositiveSecondsMeansNoDeadline) {
  EXPECT_FALSE(Deadline::after(0).active());
  EXPECT_FALSE(Deadline::after(-1.5).active());
  EXPECT_FALSE(Deadline::after(0).expired());
}

TEST(DeadlineTest, FutureDeadlineActiveButNotExpired) {
  Deadline D = Deadline::after(3600.0);
  EXPECT_TRUE(D.active());
  EXPECT_FALSE(D.expired());
}

TEST(DeadlineTest, TinyDeadlineExpires) {
  Deadline D = Deadline::after(1e-9);
  EXPECT_TRUE(D.active());
  // steady_clock must advance past a nanosecond eventually.
  while (!D.expired()) {
  }
  EXPECT_TRUE(D.expired());
}
