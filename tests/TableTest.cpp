//===- tests/TableTest.cpp - Table unit tests ------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Program.h"
#include "fixpoint/Table.h"

#include "runtime/Lattices.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace flix;

namespace {

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

class TableTest : public ::testing::Test {
protected:
  ValueFactory F;
  ParityLattice L{F};

  Value key(int A, int B) { return F.tuple({F.integer(A), F.integer(B)}); }
};

TEST_F(TableTest, InsertAndLookup) {
  Table T(2, L, F);
  auto [Id, Changed] = T.join(key(1, 2), L.odd());
  EXPECT_TRUE(Changed);
  EXPECT_EQ(T.size(), 1u);
  ASSERT_NE(T.lookup(key(1, 2)), nullptr);
  EXPECT_EQ(*T.lookup(key(1, 2)), L.odd());
  EXPECT_EQ(T.lookup(key(2, 1)), nullptr);
  EXPECT_EQ(T.lookupRow(key(1, 2)), Id);
}

TEST_F(TableTest, JoinComputesLubPerCell) {
  Table T(2, L, F);
  T.join(key(1, 2), L.odd());
  auto R1 = T.join(key(1, 2), L.odd());
  EXPECT_FALSE(R1.Changed); // no increase
  auto R2 = T.join(key(1, 2), L.even());
  EXPECT_TRUE(R2.Changed); // odd ⊔ even = ⊤
  EXPECT_EQ(*T.lookup(key(1, 2)), L.top());
  EXPECT_EQ(T.size(), 1u); // still one compact cell
}

TEST_F(TableTest, BottomCellsNotMaterialized) {
  Table T(2, L, F);
  auto R = T.join(key(1, 2), L.bot());
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(R.RowId, Table::NoRow);
  EXPECT_EQ(T.size(), 0u);
}

TEST_F(TableTest, JoinBottomIntoExistingCellIsNoop) {
  Table T(2, L, F);
  T.join(key(1, 2), L.odd());
  auto R = T.join(key(1, 2), L.bot());
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(*T.lookup(key(1, 2)), L.odd());
}

TEST_F(TableTest, SecondaryIndexProbing) {
  Table T(2, L, F);
  for (int A = 0; A < 5; ++A)
    for (int B = 0; B < 3; ++B)
      T.join(key(A, B), L.odd());
  // Probe on column 0 = 2.
  Value Proj = F.tuple({F.integer(2)});
  const std::vector<uint32_t> &Bucket = T.probe(0b01, Proj);
  EXPECT_EQ(Bucket.size(), 3u);
  for (uint32_t Id : Bucket)
    EXPECT_EQ(T.rowKey(Id)[0].asInt(), 2);
  // Probe on column 1 = 0.
  const std::vector<uint32_t> &B2 = T.probe(0b10, F.tuple({F.integer(0)}));
  EXPECT_EQ(B2.size(), 5u);
  EXPECT_EQ(T.numIndexes(), 2u);
}

TEST_F(TableTest, IndexStaysInSyncWithNewRows) {
  Table T(2, L, F);
  T.join(key(1, 1), L.odd());
  Value Proj = F.tuple({F.integer(1)});
  EXPECT_EQ(T.probe(0b01, Proj).size(), 1u);
  // Insert after the index exists; the index must pick it up.
  T.join(key(1, 2), L.odd());
  EXPECT_EQ(T.probe(0b01, Proj).size(), 2u);
}

TEST_F(TableTest, ProbeMissReturnsEmpty) {
  Table T(2, L, F);
  T.join(key(1, 1), L.odd());
  EXPECT_TRUE(T.probe(0b01, F.tuple({F.integer(9)})).empty());
}

TEST_F(TableTest, MemoryAccountingGrows) {
  Table T(2, L, F);
  size_t Before = T.memoryBytes();
  for (int I = 0; I < 1000; ++I)
    T.join(key(I, I), L.odd());
  T.probe(0b01, F.tuple({F.integer(0)}));
  EXPECT_GT(T.memoryBytes(), Before);
}

TEST_F(TableTest, MemoryAccountingMonotoneUnderJoins) {
  // Joins only ever add rows or lub existing cells in place, so the
  // reported footprint must never decrease across a join sequence.
  Table T(2, L, F);
  size_t Prev = T.memoryBytes();
  for (int I = 0; I < 256; ++I) {
    T.join(key(I % 16, I), L.odd());
    size_t Now = T.memoryBytes();
    EXPECT_GE(Now, Prev) << "at join " << I;
    Prev = Now;
  }
}

TEST_F(TableTest, MemoryAccountingCoversBucketCapacity) {
  // All rows share key column 0, so the mask-0b01 index is one bucket of
  // N ids. The old flat per-entry estimate ignored the bucket vector's
  // geometric capacity growth; the fix accounts capacity, so the reported
  // index memory must bound the payload bytes from below and stay within
  // a small constant factor of them from above.
  constexpr int N = 4096;
  Table T(2, L, F);
  for (int I = 0; I < N; ++I)
    T.join(key(7, I), L.odd());
  size_t RowsOnly = T.memoryBytes();
  T.probe(0b01, F.tuple({F.integer(7)}));
  size_t WithIndex = T.memoryBytes();
  size_t IndexBytes = WithIndex - RowsOnly;
  // Lower bound: the ids actually stored (capacity >= size).
  EXPECT_GE(IndexBytes, N * sizeof(uint32_t));
  // Upper bound: capacity of a doubling vector is < 2x size; node and
  // map overhead for a single bucket is small. 4x payload is generous.
  EXPECT_LE(IndexBytes, 4u * N * sizeof(uint32_t));
}

TEST_F(TableTest, BuildIndexFromPartialsMatchesIncrementalIndex) {
  // The pool-parallel build path (partial scans + merge) must produce the
  // same buckets, in the same ascending-id order, as the incremental
  // ensureIndex path — probeExisting on one must equal probe on the other.
  constexpr int N = 100;
  Table Inc(2, L, F), Par(2, L, F);
  for (int I = 0; I < N; ++I) {
    Inc.join(key(I % 7, I), L.odd());
    Par.join(key(I % 7, I), L.odd());
  }

  uint64_t Mask = 0b01;
  std::vector<Table::PartialIndex> Parts(3);
  uint32_t Chunk = (N + 2) / 3;
  for (uint32_t C = 0; C < 3; ++C)
    Par.buildPartialIndex(Mask, C * Chunk,
                          std::min<uint32_t>((C + 1) * Chunk, N), Parts[C]);
  Par.reserveIndexSlots(std::span<const uint64_t>(&Mask, 1));
  EXPECT_EQ(Par.numIndexes(), 1u);
  Par.buildIndexFromPartials(
      Mask, std::span<Table::PartialIndex>(Parts.data(), Parts.size()));

  for (int A = 0; A < 7; ++A) {
    Value Proj = F.tuple({F.integer(A)});
    const std::vector<uint32_t> *B = Par.probeExisting(Mask, Proj);
    ASSERT_NE(B, nullptr);
    EXPECT_EQ(*B, Inc.probe(Mask, Proj)) << "column value " << A;
    EXPECT_TRUE(std::is_sorted(B->begin(), B->end()));
  }
  // New rows keep flowing into the merged index afterwards.
  Par.join(key(3, 999), L.odd());
  EXPECT_EQ(Par.probeExisting(Mask, F.tuple({F.integer(3)}))->back(),
            static_cast<uint32_t>(N));
}

TEST_F(TableTest, RelationalTableViaBoolLattice) {
  BoolLattice BL(F);
  Table T(2, BL, F);
  auto R1 = T.join(key(1, 2), F.boolean(true));
  EXPECT_TRUE(R1.Changed);
  auto R2 = T.join(key(1, 2), F.boolean(true));
  EXPECT_FALSE(R2.Changed); // duplicate tuple
  EXPECT_EQ(T.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Program dump (round-trip sanity for diagnostics)
//===----------------------------------------------------------------------===//

TEST(ProgramDumpTest, RendersRulesAndFacts) {
  ValueFactory F;
  ParityLattice L(F);
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId V = P.lattice("V", 2, &L);
  FnId Sum = P.function("sum", 2, FnRole::Transfer,
                        [&](std::span<const Value> Args) {
                          return L.sum(Args[0], Args[1]);
                        });
  P.addFact(A, {F.integer(1), F.integer(2)});
  P.addLatFact(V, {F.string("x")}, L.odd());
  RuleBuilder()
      .headFn(V, {"k"}, Sum, {"p", "q"})
      .atom(V, {"k", "p"})
      .atom(V, {"k", "q"})
      .addTo(P);
  RuleBuilder()
      .head(A, {"x", "y"})
      .atom(A, {"y", "x"})
      .negated(A, {"x", "x"})
      .addTo(P);
  std::string D = P.dump();
  EXPECT_NE(D.find("rel A/2"), std::string::npos);
  EXPECT_NE(D.find("lat V/2 <Parity>"), std::string::npos);
  EXPECT_NE(D.find("A(1, 2)."), std::string::npos);
  EXPECT_NE(D.find("Parity.Odd"), std::string::npos);
  EXPECT_NE(D.find("sum(p, q)"), std::string::npos);
  EXPECT_NE(D.find("!A(x, x)"), std::string::npos);
}

TEST(ProgramValidateTest, DetectsRoleMisuse) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 1);
  PredId B = P.relation("B", 1);
  FnId T = P.function("t", 1, FnRole::Transfer,
                      [&](std::span<const Value> Args) { return Args[0]; });
  // Transfer function used as a filter.
  RuleBuilder().head(B, {"x"}).atom(A, {"x"}).filter(T, {"x"}).addTo(P);
  auto Err = P.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("not declared Filter"), std::string::npos);
}

TEST(ProgramValidateTest, RejectsKeyArityAbove63) {
  // 64 key columns would make `uint64_t(1) << KeyArity` UB in the
  // solvers' bound-mask computation; validate() must reject the program
  // with a diagnostic instead (regression for the mask-overflow bug).
  ValueFactory F;
  Program P(F);
  P.relation("Wide", 64);
  auto Err = P.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Wide"), std::string::npos);
  EXPECT_NE(Err->find("key arity 64"), std::string::npos);
  EXPECT_NE(Err->find("63"), std::string::npos);
}

TEST(ProgramValidateTest, KeyArity63IsAccepted) {
  ValueFactory F;
  Program P(F);
  P.relation("JustFits", 63);
  EXPECT_FALSE(P.validate().has_value());
}

TEST(ProgramValidateTest, DetectsArityMismatch) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 1);
  Rule R;
  R.Head.Pred = B;
  R.Head.LastTerm = Term::var(0);
  BodyAtom At;
  At.Pred = A;
  At.Terms.push_back(Term::var(0)); // A used with arity 1
  R.Body.emplace_back(std::move(At));
  R.NumVars = 1;
  P.addRule(std::move(R));
  auto Err = P.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("expected 2"), std::string::npos);
}

} // namespace
