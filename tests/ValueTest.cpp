//===- tests/ValueTest.cpp - Hash-consed value tests ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include <gtest/gtest.h>

using namespace flix;

namespace {

class ValueTest : public ::testing::Test {
protected:
  ValueFactory F;
};

TEST_F(ValueTest, PrimitivesRoundTrip) {
  EXPECT_TRUE(F.unit().isUnit());
  EXPECT_TRUE(F.boolean(true).asBool());
  EXPECT_FALSE(F.boolean(false).asBool());
  EXPECT_EQ(F.integer(-42).asInt(), -42);
  EXPECT_EQ(F.integer(INT64_MIN).asInt(), INT64_MIN);
  EXPECT_EQ(F.integer(INT64_MAX).asInt(), INT64_MAX);
}

TEST_F(ValueTest, StringsIntern) {
  Value A = F.string("hello");
  Value B = F.string("hello");
  Value C = F.string("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(F.strings().text(A.asStr()), "hello");
}

TEST_F(ValueTest, EqualityDistinguishesKinds) {
  // Int 0, Bool false and Unit all have zero payload bits.
  EXPECT_NE(F.integer(0), F.boolean(false));
  EXPECT_NE(Value(), F.integer(0));
  EXPECT_NE(F.integer(1), F.boolean(true));
}

TEST_F(ValueTest, TagsHashCons) {
  Value A = F.tag("Parity.Odd");
  Value B = F.tag("Parity.Odd");
  Value C = F.tag("Parity.Even");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(F.strings().text(F.tagName(A)), "Parity.Odd");
  EXPECT_TRUE(F.tagPayload(A).isUnit());
}

TEST_F(ValueTest, TagsWithPayload) {
  Value P1 = F.tag("Cst", F.integer(7));
  Value P2 = F.tag("Cst", F.integer(7));
  Value P3 = F.tag("Cst", F.integer(8));
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, P3);
  EXPECT_EQ(F.tagPayload(P1).asInt(), 7);
}

TEST_F(ValueTest, NestedTagsStructurallyEqual) {
  Value Inner = F.tuple({F.string("x"), F.integer(1)});
  Value A = F.tag("Wrap", Inner);
  Value B = F.tag("Wrap", F.tuple({F.string("x"), F.integer(1)}));
  EXPECT_EQ(A, B);
}

TEST_F(ValueTest, TuplesHashCons) {
  Value A = F.tuple({F.integer(1), F.integer(2)});
  Value B = F.tuple({F.integer(1), F.integer(2)});
  Value C = F.tuple({F.integer(2), F.integer(1)});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(F.tupleElems(A).size(), 2u);
  EXPECT_EQ(F.tupleElems(A)[1].asInt(), 2);
}

TEST_F(ValueTest, EmptyTupleIsValid) {
  Value A = F.tuple(std::initializer_list<Value>{});
  Value B = F.tuple(std::initializer_list<Value>{});
  EXPECT_EQ(A, B);
  EXPECT_EQ(F.tupleElems(A).size(), 0u);
}

TEST_F(ValueTest, SetsCanonicalized) {
  Value A = F.set({F.integer(2), F.integer(1), F.integer(2)});
  Value B = F.set({F.integer(1), F.integer(2)});
  EXPECT_EQ(A, B);
  EXPECT_EQ(F.setElems(A).size(), 2u);
}

TEST_F(ValueTest, SetOperations) {
  Value S12 = F.set({F.integer(1), F.integer(2)});
  Value S23 = F.set({F.integer(2), F.integer(3)});
  EXPECT_EQ(F.setUnion(S12, S23),
            F.set({F.integer(1), F.integer(2), F.integer(3)}));
  EXPECT_EQ(F.setIntersect(S12, S23), F.set({F.integer(2)}));
  EXPECT_TRUE(F.setContains(S12, F.integer(1)));
  EXPECT_FALSE(F.setContains(S12, F.integer(3)));
  EXPECT_TRUE(F.setSubsetOf(F.set({F.integer(2)}), S12));
  EXPECT_FALSE(F.setSubsetOf(S12, S23));
  EXPECT_EQ(F.setInsert(S12, F.integer(3)),
            F.set({F.integer(1), F.integer(2), F.integer(3)}));
  EXPECT_EQ(F.setInsert(S12, F.integer(1)), S12);
}

TEST_F(ValueTest, EmptySetSubsetOfEverything) {
  Value E = F.emptySet();
  Value S = F.set({F.string("a")});
  EXPECT_TRUE(F.setSubsetOf(E, S));
  EXPECT_TRUE(F.setSubsetOf(E, E));
  EXPECT_FALSE(F.setSubsetOf(S, E));
}

TEST_F(ValueTest, ToStringRendering) {
  EXPECT_EQ(F.toString(F.unit()), "()");
  EXPECT_EQ(F.toString(F.boolean(true)), "true");
  EXPECT_EQ(F.toString(F.integer(-3)), "-3");
  EXPECT_EQ(F.toString(F.string("hi")), "\"hi\"");
  EXPECT_EQ(F.toString(F.tag("Parity.Odd")), "Parity.Odd");
  EXPECT_EQ(F.toString(F.tag("Cst", F.integer(4))), "Cst(4)");
  EXPECT_EQ(F.toString(F.tuple({F.integer(1), F.string("a")})),
            "(1, \"a\")");
  EXPECT_EQ(F.toString(F.set({F.integer(2), F.integer(1)})), "{1, 2}");
}

TEST_F(ValueTest, HashStableAndDiscriminating) {
  Value A = F.tuple({F.integer(1), F.integer(2)});
  Value B = F.tuple({F.integer(1), F.integer(2)});
  EXPECT_EQ(A.hash(), B.hash());
  // Not a strict requirement, but these should essentially never collide.
  EXPECT_NE(F.integer(1).hash(), F.integer(2).hash());
}

TEST_F(ValueTest, MemoryAccountingGrows) {
  size_t Before = F.memoryBytes();
  for (int I = 0; I < 100; ++I)
    F.tuple({F.integer(I), F.integer(I + 1)});
  EXPECT_GT(F.memoryBytes(), Before);
}

} // namespace
