//===- tests/VmDifferentialTest.cpp - bytecode VM vs. interpreter --------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential gates for the bytecode VM (DESIGN.md S15). Two layers:
///
///  * Randomized engine identity: seeded random functional modules
///    (workload/RandomExpr.h) compiled once, then every def is called on
///    both engines with random argument vectors. Values must be handle-
///    identical; when a call faults (division/remainder by zero, missed
///    match case, call-depth overflow) both engines must fault with the
///    exact same message.
///
///  * Suite matrix: the three paper case-study workloads solved with
///    UseVm {off, on} x NumThreads {0, 1, 8} (x EnableMemo on the
///    FLIX-source pipeline) must produce identical models. On the source
///    pipeline the VM must fully cover the program: InterpFallbacks == 0
///    and every extern dispatch runs on the VM.
///
/// The test names are wired into the CI TSan/ASan --gtest_filter lists,
/// so the 8-thread configurations run under both sanitizers.
///
//===----------------------------------------------------------------------===//

#include "analyses/Ifds.h"
#include "analyses/ShortestPaths.h"
#include "analyses/StrongUpdate.h"
#include "lang/Compiler.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"
#include "workload/RandomExpr.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace flix;

namespace {

/// Deterministic argument-vector RNG (mirrors RandomExpr.cpp's xorshift
/// so failures reproduce across platforms).
struct ArgRng {
  uint64_t S;
  explicit ArgRng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

Value randomArg(ValueFactory &F, ArgRng &R, RandomExprType T) {
  switch (T) {
  case RandomExprType::Int:
    // Small values keep division-by-zero reachable.
    return F.integer(static_cast<int64_t>(R.below(7)) - 2);
  case RandomExprType::Bool:
    return F.boolean(R.below(2) != 0);
  case RandomExprType::Shape:
    switch (R.below(3)) {
    case 0:
      return F.tag("Shape.Dot");
    case 1:
      return F.tag("Shape.Box", F.integer(static_cast<int64_t>(R.below(5))));
    default:
      return F.tag("Shape.Pair",
                   F.tuple({F.integer(static_cast<int64_t>(R.below(5))),
                            F.boolean(R.below(2) != 0)}));
    }
  }
  return F.unit();
}

/// Calls \p Fn on both engines with the same arguments and asserts
/// identical outcome: same value, or same fault message. Increments
/// \p FaultCount when both engines faulted.
void checkCall(FlixCompiler &C, const RandomExprFn &Fn, uint32_t VmIx,
               std::span<const Value> Args, const std::string &Ctx,
               int &FaultCount) {
  Interp &I = C.interp();

  I.clearError();
  Value FromInterp = I.call(Fn.Name, Args);
  bool InterpFaulted = I.hasError();
  std::string InterpMsg = I.error();

  I.clearError();
  Value FromVm = C.vm()->call(VmIx, Args);
  bool VmFaulted = I.hasError(); // the VM reports faults into the Interp
  std::string VmMsg = I.error();
  I.clearError();

  ASSERT_EQ(InterpFaulted, VmFaulted)
      << Ctx << ": interp=" << (InterpFaulted ? InterpMsg : "ok")
      << " vm=" << (VmFaulted ? VmMsg : "ok");
  if (InterpFaulted) {
    // Fault identity is exact, message and all: the VM must surface the
    // same first fault the interpreter does.
    EXPECT_EQ(InterpMsg, VmMsg) << Ctx;
    ++FaultCount;
  } else {
    // Values are hash-consed, so handle equality is structural equality.
    EXPECT_EQ(FromInterp, FromVm) << Ctx << ": interp=" << Fn.Name;
  }
}

TEST(VmDifferentialTest, RandomExprEngineIdentity) {
  int FaultCount = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    RandomExprModule M = generateRandomExprModule(Seed, 6, 4);
    ValueFactory F;
    FlixCompiler C(F);
    ASSERT_TRUE(C.compile(M.Source, "random-expr.flix"))
        << "seed " << Seed << ":\n"
        << C.diagnostics() << "\n"
        << M.Source;
    ASSERT_NE(C.vm(), nullptr);
    ArgRng R(Seed * 0x9e3779b97f4a7c15ull);
    for (const RandomExprFn &Fn : M.Fns) {
      std::optional<uint32_t> Ix = C.vmFunctionIndex(Fn.Name);
      // The generated grammar stays inside the compilable fragment, so a
      // missing VM body is a compiler bug, not an acceptable fallback.
      ASSERT_TRUE(Ix.has_value()) << "seed " << Seed << " fn " << Fn.Name;
      for (int Trial = 0; Trial < 8; ++Trial) {
        std::vector<Value> Args;
        for (RandomExprType T : Fn.Params)
          Args.push_back(randomArg(F, R, T));
        std::string Ctx = "seed " + std::to_string(Seed) + " fn " + Fn.Name +
                          " trial " + std::to_string(Trial);
        checkCall(C, Fn, *Ix, Args, Ctx, FaultCount);
        if (::testing::Test::HasFatalFailure())
          return;
      }
    }
  }
  // The grammar includes /, % and non-exhaustive matches precisely so the
  // fault path is exercised — a zero here means the generator regressed
  // into the happy path only.
  EXPECT_GT(FaultCount, 0);
}

TEST(VmDifferentialTest, DepthOverflowDiagnosticIdentity) {
  ValueFactory F;
  FlixCompiler C(F);
  ASSERT_TRUE(C.compile("def loop(x: Int): Int = loop(x + 1)\n",
                        "overflow.flix"))
      << C.diagnostics();
  std::optional<uint32_t> Ix = C.vmFunctionIndex("loop");
  ASSERT_TRUE(Ix.has_value());
  Value A[1] = {F.integer(0)};

  Interp &I = C.interp();
  I.clearError();
  I.call("loop", A);
  ASSERT_TRUE(I.hasError());
  std::string InterpMsg = I.error();

  I.clearError();
  C.vm()->call(*Ix, A);
  ASSERT_TRUE(I.hasError());
  std::string VmMsg = I.error();

  // Identical diagnostic, function name and source span included.
  EXPECT_EQ(InterpMsg, VmMsg);
  EXPECT_NE(InterpMsg.find("call depth exceeded in 'loop'"),
            std::string::npos)
      << InterpMsg;
  EXPECT_NE(InterpMsg.find("overflow.flix:1:"), std::string::npos)
      << InterpMsg;
}

std::string describe(const SolverOptions &O) {
  return "vm=" + std::to_string(O.UseVm) +
         " memo=" + std::to_string(O.EnableMemo) +
         " threads=" + std::to_string(O.NumThreads);
}

/// UseVm {off, on} x NumThreads {0, 1, 8}.
std::vector<SolverOptions> engineMatrix() {
  std::vector<SolverOptions> Out;
  for (bool Vm : {false, true})
    for (unsigned Threads : {0u, 1u, 8u}) {
      SolverOptions O;
      O.UseVm = Vm;
      O.NumThreads = Threads;
      Out.push_back(O);
    }
  return Out;
}

SolverOptions interpBaseline() {
  SolverOptions O;
  O.UseVm = false;
  return O;
}

TEST(VmDifferentialTest, ShortestPathsEngineMatrix) {
  WeightedGraph G = generateGraph(11, 150, 4.0, 12);
  SsspResult Base = runShortestPathsFlix(G, 0, interpBaseline());
  ASSERT_TRUE(Base.Ok);
  EXPECT_EQ(Base.Dist, runDijkstra(G, 0).Dist);
  for (const SolverOptions &O : engineMatrix()) {
    SsspResult R = runShortestPathsFlix(G, 0, O);
    ASSERT_TRUE(R.Ok) << describe(O);
    EXPECT_EQ(R.Dist, Base.Dist) << describe(O);
  }
}

TEST(VmDifferentialTest, IfdsEngineMatrix) {
  IcfgProgram G = generateIcfg(5, 10, 32, 90, 3);
  IfdsProblem Prob = G.toIfdsProblem();
  IfdsResult Base = runIfdsFlix(Prob, interpBaseline());
  ASSERT_TRUE(Base.Ok) << Base.Error;
  EXPECT_TRUE(Base.sameResult(runIfdsImperative(Prob)));
  for (const SolverOptions &O : engineMatrix()) {
    IfdsResult R = runIfdsFlix(Prob, O);
    ASSERT_TRUE(R.Ok) << describe(O) << ": " << R.Error;
    EXPECT_TRUE(R.sameResult(Base)) << describe(O);
    // Native externs are not interpreter fallbacks in either engine mode.
    EXPECT_EQ(R.Stats.InterpFallbacks, 0u) << describe(O);
  }
}

TEST(VmDifferentialTest, StrongUpdateSourceEngineMatrix) {
  // The FLIX-source pipeline: every lattice operation and filter extern
  // is compiled bytecode when UseVm is on, an interpreter call when off.
  PointerProgram In = generatePointerProgram(13, 300);
  StrongUpdateResult Base = runStrongUpdateFlixSource(In, interpBaseline());
  ASSERT_TRUE(Base.ok()) << Base.Error;
  // Anchor against the native-lattice implementation too.
  StrongUpdateResult Native = runStrongUpdateFlix(In, interpBaseline());
  ASSERT_TRUE(Native.ok()) << Native.Error;
  EXPECT_TRUE(Base.samePointsTo(Native));
  for (bool Memo : {false, true})
    for (const SolverOptions &Engine : engineMatrix()) {
      SolverOptions O = Engine;
      O.EnableMemo = Memo;
      StrongUpdateResult R = runStrongUpdateFlixSource(In, O);
      ASSERT_TRUE(R.ok()) << describe(O) << ": " << R.Error;
      EXPECT_TRUE(R.samePointsTo(Base)) << describe(O);
      // The VM must cover the whole program — any interpreter fallback
      // on the standard suites is a compiler regression.
      EXPECT_EQ(R.Stats.InterpFallbacks, 0u) << describe(O);
      if (O.UseVm)
        EXPECT_GT(R.Stats.VmCalls, 0u) << describe(O);
      else
        EXPECT_EQ(R.Stats.VmCalls, 0u) << describe(O);
    }
}

} // namespace
