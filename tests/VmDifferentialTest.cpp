//===- tests/VmDifferentialTest.cpp - bytecode VM vs. interpreter --------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential gates for the bytecode VM (DESIGN.md S15). Two layers:
///
///  * Randomized engine identity: seeded random functional modules
///    (workload/RandomExpr.h) compiled once, then every def is called on
///    both engines with random argument vectors. Values must be handle-
///    identical; when a call faults (division/remainder by zero, missed
///    match case, call-depth overflow) both engines must fault with the
///    exact same message.
///
///  * Suite matrix: the three paper case-study workloads solved with
///    UseVm {off, on} x NumThreads {0, 1, 8} (x EnableMemo on the
///    FLIX-source pipeline) must produce identical models. On the source
///    pipeline the VM must fully cover the program: InterpFallbacks == 0
///    and every extern dispatch runs on the VM.
///
/// The test names are wired into the CI TSan/ASan --gtest_filter lists,
/// so the 8-thread configurations run under both sanitizers.
///
//===----------------------------------------------------------------------===//

#include "analyses/Ifds.h"
#include "analyses/ShortestPaths.h"
#include "analyses/StrongUpdate.h"
#include "lang/Compiler.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"
#include "workload/PointerWorkload.h"
#include "workload/RandomExpr.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace flix;

namespace {

/// Deterministic argument-vector RNG (mirrors RandomExpr.cpp's xorshift
/// so failures reproduce across platforms).
struct ArgRng {
  uint64_t S;
  explicit ArgRng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

Value randomArg(ValueFactory &F, ArgRng &R, RandomExprType T) {
  switch (T) {
  case RandomExprType::Int:
    // Small values keep division-by-zero reachable.
    return F.integer(static_cast<int64_t>(R.below(7)) - 2);
  case RandomExprType::Bool:
    return F.boolean(R.below(2) != 0);
  case RandomExprType::Shape:
    switch (R.below(3)) {
    case 0:
      return F.tag("Shape.Dot");
    case 1:
      return F.tag("Shape.Box", F.integer(static_cast<int64_t>(R.below(5))));
    default:
      return F.tag("Shape.Pair",
                   F.tuple({F.integer(static_cast<int64_t>(R.below(5))),
                            F.boolean(R.below(2) != 0)}));
    }
  }
  return F.unit();
}

/// Calls \p Fn on both engines with the same arguments and asserts
/// identical outcome: same value, or same fault message. Increments
/// \p FaultCount when both engines faulted.
void checkCall(FlixCompiler &C, const RandomExprFn &Fn, uint32_t VmIx,
               std::span<const Value> Args, const std::string &Ctx,
               int &FaultCount) {
  Interp &I = C.interp();

  I.clearError();
  Value FromInterp = I.call(Fn.Name, Args);
  bool InterpFaulted = I.hasError();
  std::string InterpMsg = I.error();

  I.clearError();
  Value FromVm = C.vm()->call(VmIx, Args);
  bool VmFaulted = I.hasError(); // the VM reports faults into the Interp
  std::string VmMsg = I.error();
  I.clearError();

  ASSERT_EQ(InterpFaulted, VmFaulted)
      << Ctx << ": interp=" << (InterpFaulted ? InterpMsg : "ok")
      << " vm=" << (VmFaulted ? VmMsg : "ok");
  if (InterpFaulted) {
    // Fault identity is exact, message and all: the VM must surface the
    // same first fault the interpreter does.
    EXPECT_EQ(InterpMsg, VmMsg) << Ctx;
    ++FaultCount;
  } else {
    // Values are hash-consed, so handle equality is structural equality.
    EXPECT_EQ(FromInterp, FromVm) << Ctx << ": interp=" << Fn.Name;
  }
}

TEST(VmDifferentialTest, RandomExprEngineIdentity) {
  int FaultCount = 0;
  uint64_t InlinedAtO2 = 0, SuperwordsAtO2 = 0;
  // Same seeds (hence same modules and same argument vectors) at
  // pipeline level 0 (PR7-identical bytecode) and level 2 (inlining +
  // local passes): the optimizer must be observationally invisible.
  for (int OptLevel : {0, 2}) {
    for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
      RandomExprModule M = generateRandomExprModule(Seed, 6, 4);
      ValueFactory F;
      FlixCompiler C(F);
      C.setVmOptLevel(OptLevel);
      ASSERT_TRUE(C.compile(M.Source, "random-expr.flix"))
          << "seed " << Seed << ":\n"
          << C.diagnostics() << "\n"
          << M.Source;
      ASSERT_NE(C.vm(), nullptr);
      const auto &Pipe = C.program().vmPipelineCounters();
      if (OptLevel == 0) {
        EXPECT_EQ(Pipe.InlinedCalls, 0u) << "seed " << Seed;
        EXPECT_EQ(Pipe.SuperwordHits, 0u) << "seed " << Seed;
        EXPECT_EQ(Pipe.RemovedInsns, 0u) << "seed " << Seed;
      } else {
        InlinedAtO2 += Pipe.InlinedCalls;
        SuperwordsAtO2 += Pipe.SuperwordHits;
      }
      ArgRng R(Seed * 0x9e3779b97f4a7c15ull);
      for (const RandomExprFn &Fn : M.Fns) {
        std::optional<uint32_t> Ix = C.vmFunctionIndex(Fn.Name);
        // The generated grammar stays inside the compilable fragment, so a
        // missing VM body is a compiler bug, not an acceptable fallback.
        ASSERT_TRUE(Ix.has_value()) << "seed " << Seed << " fn " << Fn.Name;
        for (int Trial = 0; Trial < 8; ++Trial) {
          std::vector<Value> Args;
          for (RandomExprType T : Fn.Params)
            Args.push_back(randomArg(F, R, T));
          std::string Ctx = "O" + std::to_string(OptLevel) + " seed " +
                            std::to_string(Seed) + " fn " + Fn.Name +
                            " trial " + std::to_string(Trial);
          checkCall(C, Fn, *Ix, Args, Ctx, FaultCount);
          if (::testing::Test::HasFatalFailure())
            return;
        }
      }
    }
  }
  // The grammar includes /, % and non-exhaustive matches precisely so the
  // fault path is exercised — a zero here means the generator regressed
  // into the happy path only.
  EXPECT_GT(FaultCount, 0);
  // The generator's fixed cast guarantees both headline optimizations
  // actually fired somewhere in the 40 modules.
  EXPECT_GT(InlinedAtO2, 0u);
  EXPECT_GT(SuperwordsAtO2, 0u);
}

TEST(VmDifferentialTest, DepthOverflowDiagnosticIdentity) {
  for (int OptLevel : {0, 2}) {
    ValueFactory F;
    FlixCompiler C(F);
    C.setVmOptLevel(OptLevel);
    ASSERT_TRUE(C.compile("def loop(x: Int): Int = loop(x + 1)\n",
                          "overflow.flix"))
        << C.diagnostics();
    std::optional<uint32_t> Ix = C.vmFunctionIndex("loop");
    ASSERT_TRUE(Ix.has_value());
    Value A[1] = {F.integer(0)};

    Interp &I = C.interp();
    I.clearError();
    I.call("loop", A);
    ASSERT_TRUE(I.hasError());
    std::string InterpMsg = I.error();

    I.clearError();
    C.vm()->call(*Ix, A);
    ASSERT_TRUE(I.hasError());
    std::string VmMsg = I.error();

    // Identical diagnostic, function name and source span included.
    EXPECT_EQ(InterpMsg, VmMsg) << "opt level " << OptLevel;
    EXPECT_NE(InterpMsg.find("call depth exceeded in 'loop'"),
              std::string::npos)
        << InterpMsg;
    EXPECT_NE(InterpMsg.find("overflow.flix:1:"), std::string::npos)
        << InterpMsg;
  }
}

TEST(VmDifferentialTest, InlineBudgetAndRecursion) {
  // A self-recursive callee must never be inlined, a callee past the
  // instruction budget must never be inlined, and a call-depth overflow
  // that unwinds *through* an inlined helper must carry the same
  // diagnostic as the interpreter.
  {
    ValueFactory F;
    FlixCompiler C(F);
    ASSERT_TRUE(C.compile("def down(x: Int): Int = "
                          "(if (x <= 0) 0 else (down(x - 1) + 1))\n"
                          "def use(y: Int): Int = down(y) + down(y - 1)\n",
                          "rec.flix"))
        << C.diagnostics();
    EXPECT_EQ(C.program().vmPipelineCounters().InlinedCalls, 0u);
    std::optional<uint32_t> Ix = C.vmFunctionIndex("use");
    ASSERT_TRUE(Ix.has_value());
    Value A[1] = {F.integer(9)};
    EXPECT_EQ(C.vm()->call(*Ix, A), C.interp().call("use", A));
    EXPECT_FALSE(C.interp().hasError());
  }
  {
    // 80 chained additions of the parameter: none fold (the operand is
    // unknown) and none die (each feeds the next), so the callee body
    // stays past the 48-instruction inline budget.
    std::string Big = "def big(x: Int): Int = x";
    for (int I = 0; I < 80; ++I)
      Big += " + x";
    Big += "\ndef use(y: Int): Int = big(y) + 1\n";
    ValueFactory F;
    FlixCompiler C(F);
    ASSERT_TRUE(C.compile(Big, "big.flix")) << C.diagnostics();
    EXPECT_EQ(C.program().vmPipelineCounters().InlinedCalls, 0u);
    std::optional<uint32_t> Ix = C.vmFunctionIndex("use");
    ASSERT_TRUE(Ix.has_value());
    Value A[1] = {F.integer(3)};
    EXPECT_EQ(C.vm()->call(*Ix, A), C.interp().call("use", A));
    EXPECT_FALSE(C.interp().hasError());
  }
  for (int OptLevel : {0, 2}) {
    // ping/pong sit on a call-graph cycle (excluded from inlining);
    // bump does not and gets spliced into both at level 2. The infinite
    // mutual recursion must then fault with a diagnostic identical to
    // the interpreter's, inlined frames notwithstanding.
    ValueFactory F;
    FlixCompiler C(F);
    C.setVmOptLevel(OptLevel);
    ASSERT_TRUE(C.compile("def bump(x: Int): Int = x - 1\n"
                          "def ping(x: Int): Int = pong(bump(x))\n"
                          "def pong(x: Int): Int = ping(bump(x))\n",
                          "mutual.flix"))
        << C.diagnostics();
    const auto &Pipe = C.program().vmPipelineCounters();
    if (OptLevel == 2)
      EXPECT_GE(Pipe.InlinedCalls, 2u); // bump into ping and into pong
    else
      EXPECT_EQ(Pipe.InlinedCalls, 0u);
    std::optional<uint32_t> Ix = C.vmFunctionIndex("ping");
    ASSERT_TRUE(Ix.has_value());
    Value A[1] = {F.integer(0)};

    Interp &I = C.interp();
    I.clearError();
    I.call("ping", A);
    ASSERT_TRUE(I.hasError());
    std::string InterpMsg = I.error();

    I.clearError();
    C.vm()->call(*Ix, A);
    ASSERT_TRUE(I.hasError());
    std::string VmMsg = I.error();
    I.clearError();

    EXPECT_EQ(InterpMsg, VmMsg) << "opt level " << OptLevel;
    EXPECT_NE(InterpMsg.find("call depth exceeded"), std::string::npos)
        << InterpMsg;
  }
}

std::string describe(const SolverOptions &O) {
  return "vm=" + std::to_string(O.UseVm) +
         " memo=" + std::to_string(O.EnableMemo) +
         " threads=" + std::to_string(O.NumThreads);
}

/// UseVm {off, on} x NumThreads {0, 1, 8}.
std::vector<SolverOptions> engineMatrix() {
  std::vector<SolverOptions> Out;
  for (bool Vm : {false, true})
    for (unsigned Threads : {0u, 1u, 8u}) {
      SolverOptions O;
      O.UseVm = Vm;
      O.NumThreads = Threads;
      Out.push_back(O);
    }
  return Out;
}

SolverOptions interpBaseline() {
  SolverOptions O;
  O.UseVm = false;
  return O;
}

TEST(VmDifferentialTest, ShortestPathsEngineMatrix) {
  WeightedGraph G = generateGraph(11, 150, 4.0, 12);
  SsspResult Base = runShortestPathsFlix(G, 0, interpBaseline());
  ASSERT_TRUE(Base.Ok);
  EXPECT_EQ(Base.Dist, runDijkstra(G, 0).Dist);
  for (const SolverOptions &O : engineMatrix()) {
    SsspResult R = runShortestPathsFlix(G, 0, O);
    ASSERT_TRUE(R.Ok) << describe(O);
    EXPECT_EQ(R.Dist, Base.Dist) << describe(O);
  }
}

TEST(VmDifferentialTest, IfdsEngineMatrix) {
  IcfgProgram G = generateIcfg(5, 10, 32, 90, 3);
  IfdsProblem Prob = G.toIfdsProblem();
  IfdsResult Base = runIfdsFlix(Prob, interpBaseline());
  ASSERT_TRUE(Base.Ok) << Base.Error;
  EXPECT_TRUE(Base.sameResult(runIfdsImperative(Prob)));
  for (const SolverOptions &O : engineMatrix()) {
    IfdsResult R = runIfdsFlix(Prob, O);
    ASSERT_TRUE(R.Ok) << describe(O) << ": " << R.Error;
    EXPECT_TRUE(R.sameResult(Base)) << describe(O);
    // Native externs are not interpreter fallbacks in either engine mode.
    EXPECT_EQ(R.Stats.InterpFallbacks, 0u) << describe(O);
  }
}

TEST(VmDifferentialTest, StrongUpdateSourceEngineMatrix) {
  // The FLIX-source pipeline: every lattice operation and filter extern
  // is compiled bytecode when UseVm is on, an interpreter call when off.
  PointerProgram In = generatePointerProgram(13, 300);
  StrongUpdateResult Base = runStrongUpdateFlixSource(In, interpBaseline());
  ASSERT_TRUE(Base.ok()) << Base.Error;
  // Anchor against the native-lattice implementation too.
  StrongUpdateResult Native = runStrongUpdateFlix(In, interpBaseline());
  ASSERT_TRUE(Native.ok()) << Native.Error;
  EXPECT_TRUE(Base.samePointsTo(Native));
  for (bool Memo : {false, true})
    for (const SolverOptions &Engine : engineMatrix()) {
      SolverOptions O = Engine;
      O.EnableMemo = Memo;
      StrongUpdateResult R = runStrongUpdateFlixSource(In, O);
      ASSERT_TRUE(R.ok()) << describe(O) << ": " << R.Error;
      EXPECT_TRUE(R.samePointsTo(Base)) << describe(O);
      // The VM must cover the whole program — any interpreter fallback
      // on the standard suites is a compiler regression.
      EXPECT_EQ(R.Stats.InterpFallbacks, 0u) << describe(O);
      if (O.UseVm)
        EXPECT_GT(R.Stats.VmCalls, 0u) << describe(O);
      else
        EXPECT_EQ(R.Stats.VmCalls, 0u) << describe(O);
    }
}

} // namespace
