//===- tools/flixbench_client.cpp - flixd load driver CLI -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Drives a running flixd with concurrent clients mixing fact updates and
// snapshot queries, then reports sustained throughput and tail latency
// (src/server/LoadDriver.h). Typical use against a daemon started with
// --port-file:
//
//   flixd --port 0 --port-file /tmp/flixd.port &
//   flixbench_client --port "$(cat /tmp/flixd.port)" --clients 8 --json
//
// Exit status is nonzero if the drive saw any hard error (transport
// failures or non-overload error replies); deadline_exceeded and
// overloaded replies are counted, not fatal — they are the server's
// documented load-shedding behavior.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/LoadDriver.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace flix;
using namespace flix::server;

static void printUsage() {
  std::fprintf(
      stderr,
      "usage: flixbench_client [options]\n"
      "\n"
      "  --port N          flixd TCP port (required unless --unix)\n"
      "  --host ADDR       flixd address (default 127.0.0.1)\n"
      "  --unix PATH       connect over a Unix-domain socket\n"
      "  --db NAME         database name (default bench)\n"
      "  --clients N       concurrent client connections (default 8)\n"
      "  --seconds S       drive duration (default 5)\n"
      "  --rows N          fact rows per mutation request (default 16)\n"
      "  --query-ratio R   fraction of requests that query (default 0.5)\n"
      "  --keyspace N      graph node bound (default 512)\n"
      "  --seed N          workload seed (default 1)\n"
      "  --deadline-ms MS  per-request deadline (default none)\n"
      "  --no-load         skip load_program (db must already exist)\n"
      "  --shutdown        send a shutdown request when done\n"
      "  --json            print the report as one JSON object\n");
}

/// Parses a decimal integer flag value, rejecting garbage, trailing
/// junk and out-of-range input (std::atoi silently mapped those to 0,
/// and `--port 99999` wrapped mod 2^16).
static long long parseIntFlag(const char *Flag, const char *Text,
                              long long Min, long long Max) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min || V > Max) {
    std::fprintf(
        stderr,
        "flixbench_client: %s wants an integer in [%lld, %lld], got '%s'\n",
        Flag, Min, Max, Text);
    std::exit(2);
  }
  return V;
}

/// Same discipline for floating-point flags (replaces std::atof).
static double parseFloatFlag(const char *Flag, const char *Text, double Min,
                             double Max) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE || !(V >= Min) ||
      !(V <= Max)) {
    std::fprintf(stderr,
                 "flixbench_client: %s wants a number in [%g, %g], got '%s'\n",
                 Flag, Min, Max, Text);
    std::exit(2);
  }
  return V;
}

int main(int argc, char **argv) {
  LoadOptions Opt;
  bool JsonOut = false;
  bool SendShutdown = false;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "flixbench_client: %s needs a value\n",
                   argv[I]);
      std::exit(2);
    }
    return argv[++I];
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      printUsage();
      return 0;
    } else if (A == "--port") {
      Opt.Port = uint16_t(parseIntFlag("--port", needValue(I), 1, 65535));
    } else if (A == "--host") {
      Opt.Host = needValue(I);
    } else if (A == "--unix") {
      Opt.UnixPath = needValue(I);
    } else if (A == "--db") {
      Opt.Db = needValue(I);
    } else if (A == "--clients") {
      Opt.Clients =
          unsigned(parseIntFlag("--clients", needValue(I), 1, 4096));
    } else if (A == "--seconds") {
      Opt.Seconds = parseFloatFlag("--seconds", needValue(I), 0.0, 86400.0);
    } else if (A == "--rows") {
      Opt.RowsPerRequest =
          unsigned(parseIntFlag("--rows", needValue(I), 1, 1 << 20));
    } else if (A == "--query-ratio") {
      Opt.QueryRatio =
          parseFloatFlag("--query-ratio", needValue(I), 0.0, 1.0);
    } else if (A == "--keyspace") {
      Opt.KeySpace =
          unsigned(parseIntFlag("--keyspace", needValue(I), 2, 1 << 30));
    } else if (A == "--seed") {
      Opt.Seed = uint64_t(
          parseIntFlag("--seed", needValue(I), 0, (1LL << 62) - 1));
    } else if (A == "--deadline-ms") {
      Opt.DeadlineMs =
          parseFloatFlag("--deadline-ms", needValue(I), 0.0, 1e9);
    } else if (A == "--no-load") {
      Opt.LoadProgram = false;
    } else if (A == "--shutdown") {
      SendShutdown = true;
    } else if (A == "--json") {
      JsonOut = true;
    } else {
      std::fprintf(stderr, "flixbench_client: unknown option '%s'\n",
                   A.c_str());
      printUsage();
      return 2;
    }
  }
  if (Opt.Port == 0 && Opt.UnixPath.empty()) {
    std::fprintf(stderr, "flixbench_client: --port or --unix required\n");
    return 2;
  }
  if (Opt.Clients == 0 || Opt.RowsPerRequest == 0 || Opt.KeySpace < 2) {
    std::fprintf(stderr, "flixbench_client: degenerate options\n");
    return 2;
  }

  LoadReport Rep = runLoad(Opt);

  if (SendShutdown) {
    Client C;
    std::string Err;
    bool Connected = Opt.UnixPath.empty()
                         ? C.connectTcp(Opt.Host, Opt.Port, Err)
                         : C.connectUnix(Opt.UnixPath, Err);
    if (Connected) {
      Json Req = Json::object();
      Req.set("op", Json::str("shutdown"));
      Json Reply;
      C.call(Req, Reply, Err);
    }
  }

  if (JsonOut) {
    std::printf("%s\n", writeJson(Rep.toJson()).c_str());
  } else {
    std::printf("flixbench: %u clients for %.2fs against db '%s'\n",
                Rep.Clients, Rep.Seconds, Opt.Db.c_str());
    std::printf("  mutations   %8llu req (%.0f/s, %.0f rows/s)\n",
                (unsigned long long)Rep.MutationRequests,
                Rep.MutationsPerSec, Rep.RowsPerSec);
    std::printf("  queries     %8llu req (%.0f/s)\n",
                (unsigned long long)Rep.QueryRequests, Rep.QueriesPerSec);
    std::printf("  update batches %5llu (coalesced %llu requests, "
                "fallback solves %llu: %llu degraded, %llu negation)\n",
                (unsigned long long)Rep.UpdateBatches,
                (unsigned long long)Rep.CoalescedRequests,
                (unsigned long long)Rep.FallbackSolves,
                (unsigned long long)Rep.DegradedRecoveries,
                (unsigned long long)Rep.NegationFallbacks);
    std::printf("  mutation latency p50 %.3fms  p99 %.3fms\n",
                Rep.MutationP50Ms, Rep.MutationP99Ms);
    std::printf("  query latency    p50 %.3fms  p99 %.3fms\n",
                Rep.QueryP50Ms, Rep.QueryP99Ms);
    std::printf("  deadline_exceeded %llu, overloaded %llu, errors %llu\n",
                (unsigned long long)Rep.DeadlineExceeded,
                (unsigned long long)Rep.Overloaded,
                (unsigned long long)Rep.Errors);
    if (!Rep.Ok)
      std::printf("  FIRST ERROR: %s\n", Rep.Error.c_str());
  }
  return Rep.Ok ? 0 : 1;
}
