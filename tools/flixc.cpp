//===- tools/flixc.cpp - FLIX command-line driver --------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// flixc: compile and solve a FLIX program.
//
//   flixc [options] <file.flix>
//
//   --naive            use naive instead of semi-naive evaluation
//   --no-index         disable automatic secondary indexes
//   --no-plans         interpret rule bodies recursively instead of
//                      running compiled join plans
//   --no-memo          disable the pure-function memo cache
//   --no-vm            run FLIX functions on the tree-walking
//                      interpreter instead of the bytecode VM
//   --reorder          greedily reorder rule bodies
//   --threads <n>      solve with the parallel engine on <n> worker
//                      threads (0 = sequential solver, the default)
//   --spill-threshold <n>  split index buckets / scans longer than <n>
//                      rows into stealable sub-tasks (parallel engine;
//                      0 disables intra-rule splitting)
//   --strict-index-coverage  assert (debug builds) that no worker probe
//                      falls back to a full table scan
//   --time-limit <s>   abort after <s> seconds
//   --facts <dir>      load input facts from <dir>/<Pred>.facts files
//                      (tab-separated, one tuple per line)
//   --update-script <file>  after the initial solve, replay incremental
//                      fact updates from <file> (see below)
//   --dump-program     print the lowered fixpoint program and exit
//   --print <pred>     print all tuples of one predicate (repeatable)
//   --explain <pred>   print derivation trees for a predicate's rows
//                      (sequential solver only)
//   --stats            print solver statistics
//   --json             print solver statistics as one JSON object on
//                      stdout (one object per update in update-script
//                      mode) and suppress the default model dump
//
// With no --print option, prints every predicate's row count and the full
// contents of predicates with at most 50 rows.
//
// Fact files use one tuple per line with tab-separated columns; columns
// are parsed according to the predicate's declared attribute types (Int,
// Str, Bool, or a nullary enum tag written Enum.Case).
//
// Update scripts drive the incremental engine (src/incremental). Each
// line is whitespace-separated tokens:
//
//   add <Pred> <col>...       stage a fact insertion
//   retract <Pred> <col>...   stage a fact retraction
//   update                    apply staged mutations incrementally
//   # ...                     comment
//
// For lattice predicates the last column is the lattice value. A final
// `update` is implied if mutations remain staged at end of file. The
// model printed at exit reflects the last update.
//
//===----------------------------------------------------------------------===//

#include "incremental/IncrementalSolver.h"
#include "lang/Compiler.h"
#include "parallel/Dispatch.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

using namespace flix;

static void printUsage() {
  std::printf(
      "usage: flixc [options] <file.flix>\n"
      "  --naive            use naive instead of semi-naive evaluation\n"
      "  --no-index         disable automatic secondary indexes\n"
      "  --no-plans         disable compiled join plans (recursive "
      "interpreter)\n"
      "  --no-memo          disable the pure-function memo cache\n"
      "  --no-vm            interpret FLIX functions (disable the bytecode "
      "VM)\n"
      "  --vm-opt-level <n> bytecode optimization pipeline: 0 = off, "
      "1 = local passes, 2 = inlining + local passes (default 2)\n"
      "  --reorder          greedily reorder rule bodies\n"
      "  --no-cost-plans    freeze driver-first join orders (disable the "
      "cost-based planner)\n"
      "  --replan-threshold <x>  adaptive re-plan hysteresis factor "
      "(0 disables between-round re-planning; default 4)\n"
      "  --threads <n>      parallel engine with <n> workers (0 = "
      "sequential)\n"
      "  --spill-threshold <n>  intra-rule split threshold (parallel "
      "engine; 0 = off)\n"
      "  --strict-index-coverage  assert full static index coverage "
      "(debug builds)\n"
      "  --time-limit <s>   abort after <s> seconds\n"
      "  --facts <dir>      load input facts from <dir>/<Pred>.facts\n"
      "  --update-script <file>  replay incremental add/retract/update "
      "commands\n"
      "  --dump-program     print the lowered fixpoint program and exit\n"
      "  --print <pred>     print all tuples of one predicate\n"
      "  --explain <pred>   print derivation trees for a predicate's rows\n"
      "  --stats            print solver statistics\n"
      "  --json             print statistics as JSON; suppresses the "
      "default model dump\n");
}

/// Checked float-flag parse (same discipline as flixd's parseFloatFlag):
/// rejects trailing junk and out-of-range values with exit code 2
/// instead of silently reading garbage the way std::atof would.
static double parseFloatFlag(const char *Flag, const char *Text,
                             double Min) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE || !(V >= Min)) {
    std::fprintf(stderr, "flixc: %s wants a number >= %g, got '%s'\n",
                 Flag, Min, Text);
    std::exit(2);
  }
  return V;
}

/// Checked integer-flag parse (same exit-2 discipline): rejects
/// trailing junk and values outside [Min, Max].
static long parseIntFlag(const char *Flag, const char *Text, long Min,
                         long Max) {
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min || V > Max) {
    std::fprintf(stderr, "flixc: %s wants an integer in [%ld, %ld], got '%s'\n",
                 Flag, Min, Max, Text);
    std::exit(2);
  }
  return V;
}

/// Parses one fact-file column according to its declared type. Returns
/// false (with a message) on malformed input.
static bool parseColumn(ValueFactory &F, const Type &T,
                        const std::string &Text, Value &Out,
                        std::string &Err) {
  switch (T.K) {
  case Type::Kind::Int: {
    char *End = nullptr;
    long long V = std::strtoll(Text.c_str(), &End, 10);
    if (End == Text.c_str() || *End != '\0') {
      Err = "expected an integer, got '" + Text + "'";
      return false;
    }
    Out = F.integer(V);
    return true;
  }
  case Type::Kind::Str:
    Out = F.string(Text);
    return true;
  case Type::Kind::Bool:
    if (Text == "true" || Text == "false") {
      Out = F.boolean(Text == "true");
      return true;
    }
    Err = "expected true/false, got '" + Text + "'";
    return false;
  case Type::Kind::Enum:
    if (Text.rfind(T.EnumName + ".", 0) == 0) {
      Out = F.tag(Text);
      return true;
    }
    Err = "expected a " + T.EnumName + " tag (Enum.Case), got '" + Text +
          "'";
    return false;
  default:
    Err = "unsupported column type " + T.str() + " in fact files";
    return false;
  }
}

/// Loads <Dir>/<Pred>.facts for every declared predicate that has one.
/// Returns the number of facts loaded, or -1 on error.
static long loadFactsDir(FlixCompiler &C, ValueFactory &F,
                         const std::string &Dir) {
  long Loaded = 0;
  const CheckedModule &CM = C.checkedModule();
  for (const auto &[Name, Info] : CM.Preds) {
    std::string Path = Dir + "/" + Name + ".facts";
    std::ifstream In(Path);
    if (!In)
      continue;
    bool IsLat = Info.Decl->IsLat;
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (Line.empty() || Line[0] == '#')
        continue;
      // Split on tabs.
      std::vector<std::string> Cols;
      size_t Start = 0;
      for (;;) {
        size_t Tab = Line.find('\t', Start);
        Cols.push_back(Line.substr(Start, Tab - Start));
        if (Tab == std::string::npos)
          break;
        Start = Tab + 1;
      }
      if (Cols.size() != Info.AttrTypes.size()) {
        std::fprintf(stderr, "%s:%u: error: expected %zu columns, got "
                             "%zu\n",
                     Path.c_str(), LineNo, Info.AttrTypes.size(),
                     Cols.size());
        return -1;
      }
      std::vector<Value> Vals(Cols.size());
      for (size_t I = 0; I < Cols.size(); ++I) {
        std::string Err;
        if (!parseColumn(F, Info.AttrTypes[I], Cols[I], Vals[I], Err)) {
          std::fprintf(stderr, "%s:%u: error: column %zu: %s\n",
                       Path.c_str(), LineNo, I + 1, Err.c_str());
          return -1;
        }
      }
      bool Ok;
      if (IsLat)
        Ok = C.addLatFact(Name,
                          std::span<const Value>(Vals.data(),
                                                 Vals.size() - 1),
                          Vals.back());
      else
        Ok = C.addFact(Name,
                       std::span<const Value>(Vals.data(), Vals.size()));
      if (!Ok) {
        std::fprintf(stderr, "%s:%u: error: fact rejected\n", Path.c_str(),
                     LineNo);
        return -1;
      }
      ++Loaded;
    }
  }
  return Loaded;
}

template <typename SolverT>
static void printPredicate(const Program &P, const SolverT &S, PredId Id) {
  const PredicateDecl &D = P.predicate(Id);
  const ValueFactory &F = P.factory();
  // Count via tuples(): the incremental engine's tables may hold
  // tombstoned (logically absent) rows that size() would include.
  std::vector<std::vector<Value>> Rows = S.tuples(Id);
  std::printf("%s (%zu rows)\n", D.Name.c_str(), Rows.size());
  for (const auto &Row : Rows) {
    std::printf("  %s(", D.Name.c_str());
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        std::printf(", ");
      Value V = Row[I];
      if (V.isStr())
        std::printf("\"%s\"", F.strings().text(V.asStr()).c_str());
      else
        std::printf("%s", F.toString(V).c_str());
    }
    std::printf(")\n");
  }
}

static void printUpdateStats(unsigned UpdateNo, const UpdateStats &U) {
  std::printf("update %u: +%llu -%llu facts, %llu cells deleted, %llu "
              "rederived, %llu derived, %llu firings, %.4f s, %llu "
              "fallback solves (%llu degraded, %llu negation)%s\n",
              UpdateNo, static_cast<unsigned long long>(U.FactsAdded),
              static_cast<unsigned long long>(U.FactsRetracted),
              static_cast<unsigned long long>(U.CellsDeleted),
              static_cast<unsigned long long>(U.CellsRederived),
              static_cast<unsigned long long>(U.FactsDerived),
              static_cast<unsigned long long>(U.RuleFirings), U.Seconds,
              static_cast<unsigned long long>(U.FallbackSolves),
              static_cast<unsigned long long>(U.DegradedRecoveries),
              static_cast<unsigned long long>(U.NegationFallbacks),
              U.FullResolve ? " (full re-solve)" : "");
}

static const char *statusName(SolveStats::Status St) {
  switch (St) {
  case SolveStats::Status::Fixpoint:
    return "fixpoint";
  case SolveStats::Status::Timeout:
    return "timeout";
  case SolveStats::Status::IterationLimit:
    return "iteration_limit";
  case SolveStats::Status::Error:
    return "error";
  }
  return "unknown";
}

/// One flat JSON object of solver statistics — the --json output. One
/// line per solve (or per update in update-script mode) so scripts can
/// stream-parse.
static void printJsonStats(const SolveStats &St, const SolverOptions &Opts) {
  std::printf(
      "{\"status\": \"%s\", \"threads\": %u, \"plans\": %s, "
      "\"memo\": %s, \"vm\": %s, \"iterations\": %llu, "
      "\"rule_firings\": %llu, "
      "\"facts_derived\": %llu, \"plan_steps\": %llu, "
      "\"cost_based_plans\": %llu, \"replan_events\": %llu, "
      "\"estimated_vs_actual_rows\": %llu, "
      "\"memo_hits\": %llu, \"memo_misses\": %llu, "
      "\"vm_calls\": %llu, \"vm_inline_cache_hits\": %llu, "
      "\"interp_fallbacks\": %llu, \"vm_opt_level\": %d, "
      "\"vm_inlined_calls\": %llu, \"vm_superword_hits\": %llu, "
      "\"vm_passes_removed_insns\": %llu, "
      "\"index_fallbacks\": %llu, \"fallback_solves\": %llu, "
      "\"negation_fallbacks\": %llu, \"degraded_recoveries\": %llu, "
      "\"seconds\": %.6f, \"memory_bytes\": %llu}\n",
      statusName(St.St), Opts.NumThreads,
      Opts.CompilePlans ? "true" : "false",
      Opts.EnableMemo ? "true" : "false",
      Opts.UseVm ? "true" : "false",
      static_cast<unsigned long long>(St.Iterations),
      static_cast<unsigned long long>(St.RuleFirings),
      static_cast<unsigned long long>(St.FactsDerived),
      static_cast<unsigned long long>(St.PlanSteps),
      static_cast<unsigned long long>(St.CostBasedPlans),
      static_cast<unsigned long long>(St.ReplanEvents),
      static_cast<unsigned long long>(St.EstimatedVsActualRows),
      static_cast<unsigned long long>(St.MemoHits),
      static_cast<unsigned long long>(St.MemoMisses),
      static_cast<unsigned long long>(St.VmCalls),
      static_cast<unsigned long long>(St.VmInlineCacheHits),
      static_cast<unsigned long long>(St.InterpFallbacks), Opts.VmOptLevel,
      static_cast<unsigned long long>(St.VmInlinedCalls),
      static_cast<unsigned long long>(St.VmSuperwordHits),
      static_cast<unsigned long long>(St.VmPassesRemovedInsns),
      static_cast<unsigned long long>(St.IndexFallbacks),
      static_cast<unsigned long long>(St.FallbackSolves),
      static_cast<unsigned long long>(St.NegationFallbacks),
      static_cast<unsigned long long>(St.DegradedRecoveries), St.Seconds,
      static_cast<unsigned long long>(St.MemoryBytes));
}

/// Running totals over an update-script replay, reported with each
/// per-update JSON line so stream parsers never need to sum themselves.
struct CumulativeUpdateStats {
  uint64_t Updates = 0;
  uint64_t FactsAdded = 0;
  uint64_t FactsRetracted = 0;
  uint64_t CellsDeleted = 0;
  uint64_t CellsRederived = 0;
  uint64_t RuleFirings = 0;
  uint64_t FactsDerived = 0;
  double Seconds = 0;

  void absorb(const UpdateStats &U) {
    ++Updates;
    FactsAdded += U.FactsAdded;
    FactsRetracted += U.FactsRetracted;
    CellsDeleted += U.CellsDeleted;
    CellsRederived += U.CellsRederived;
    RuleFirings += U.RuleFirings;
    FactsDerived += U.FactsDerived;
    Seconds += U.Seconds;
  }
};

/// The per-update --json line in update-script mode: the flat solve
/// stats plus the update number, this batch's wall time and mutation
/// counters, and the running cumulative block.
static void printJsonUpdateStats(unsigned UpdateNo, const UpdateStats &U,
                                 const SolverOptions &Opts,
                                 const CumulativeUpdateStats &Cum) {
  std::printf(
      "{\"status\": \"%s\", \"update\": %u, \"threads\": %u, "
      "\"batch_seconds\": %.6f, \"facts_added\": %llu, "
      "\"facts_retracted\": %llu, \"cells_deleted\": %llu, "
      "\"cells_rederived\": %llu, \"iterations\": %llu, "
      "\"rule_firings\": %llu, \"facts_derived\": %llu, "
      "\"full_resolve\": %s, \"fallback_solves\": %llu, "
      "\"negation_fallbacks\": %llu, \"degraded_recoveries\": %llu, "
      "\"vm_calls\": %llu, \"vm_inline_cache_hits\": %llu, "
      "\"interp_fallbacks\": %llu, \"vm_inlined_calls\": %llu, "
      "\"vm_superword_hits\": %llu, \"vm_passes_removed_insns\": %llu, "
      "\"cost_based_plans\": %llu, \"replan_events\": %llu, "
      "\"memory_bytes\": %llu, \"cumulative\": {\"updates\": %llu, "
      "\"seconds\": %.6f, \"facts_added\": %llu, "
      "\"facts_retracted\": %llu, \"cells_deleted\": %llu, "
      "\"cells_rederived\": %llu, \"rule_firings\": %llu, "
      "\"facts_derived\": %llu}}\n",
      statusName(U.St), UpdateNo, Opts.NumThreads, U.Seconds,
      static_cast<unsigned long long>(U.FactsAdded),
      static_cast<unsigned long long>(U.FactsRetracted),
      static_cast<unsigned long long>(U.CellsDeleted),
      static_cast<unsigned long long>(U.CellsRederived),
      static_cast<unsigned long long>(U.Iterations),
      static_cast<unsigned long long>(U.RuleFirings),
      static_cast<unsigned long long>(U.FactsDerived),
      U.FullResolve ? "true" : "false",
      static_cast<unsigned long long>(U.FallbackSolves),
      static_cast<unsigned long long>(U.NegationFallbacks),
      static_cast<unsigned long long>(U.DegradedRecoveries),
      static_cast<unsigned long long>(U.VmCalls),
      static_cast<unsigned long long>(U.VmInlineCacheHits),
      static_cast<unsigned long long>(U.InterpFallbacks),
      static_cast<unsigned long long>(U.VmInlinedCalls),
      static_cast<unsigned long long>(U.VmSuperwordHits),
      static_cast<unsigned long long>(U.VmPassesRemovedInsns),
      static_cast<unsigned long long>(U.CostBasedPlans),
      static_cast<unsigned long long>(U.ReplanEvents),
      static_cast<unsigned long long>(U.MemoryBytes),
      static_cast<unsigned long long>(Cum.Updates), Cum.Seconds,
      static_cast<unsigned long long>(Cum.FactsAdded),
      static_cast<unsigned long long>(Cum.FactsRetracted),
      static_cast<unsigned long long>(Cum.CellsDeleted),
      static_cast<unsigned long long>(Cum.CellsRederived),
      static_cast<unsigned long long>(Cum.RuleFirings),
      static_cast<unsigned long long>(Cum.FactsDerived));
}

/// Replays an update script (see the file comment) against the
/// incremental engine, then prints the final model like the one-shot
/// path. Returns the process exit code.
static int runUpdateScript(FlixCompiler &C, ValueFactory &F,
                           const SolverOptions &Opts,
                           const std::string &ScriptPath,
                           const std::vector<std::string> &PrintPreds,
                           const std::vector<std::string> &ExplainPreds,
                           bool Stats, bool Json) {
  std::ifstream Script(ScriptPath);
  if (!Script) {
    std::fprintf(stderr, "error: cannot open '%s'\n", ScriptPath.c_str());
    return 1;
  }

  const Program &P = C.program();
  const CheckedModule &CM = C.checkedModule();
  IncrementalSolver IS(P, Opts);

  unsigned UpdateNo = 0;
  CumulativeUpdateStats Cum;
  auto runUpdate = [&]() -> bool {
    UpdateStats U = IS.update();
    if (U.St == SolveStats::Status::Error) {
      std::fprintf(stderr, "error: %s\n", U.Error.c_str());
      return false;
    }
    if (C.interp().hasError()) {
      std::fprintf(stderr, "runtime error: %s\n",
                   C.interp().error().c_str());
      return false;
    }
    if (U.St != SolveStats::Status::Fixpoint)
      std::fprintf(stderr, "warning: update %u did not reach a fixpoint; "
                           "the next update re-solves from scratch\n",
                   UpdateNo);
    Cum.absorb(U);
    if (Stats)
      printUpdateStats(UpdateNo, U);
    if (Json)
      printJsonUpdateStats(UpdateNo, U, Opts, Cum);
    ++UpdateNo;
    return true;
  };

  // The initial solve (update 0) establishes the support index.
  if (!runUpdate())
    return 1;

  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(Script, Line)) {
    ++LineNo;
    std::istringstream Toks(Line);
    std::vector<std::string> Tok;
    for (std::string T; Toks >> T;)
      Tok.push_back(std::move(T));
    if (Tok.empty() || Tok[0][0] == '#')
      continue;

    if (Tok[0] == "update") {
      if (!runUpdate())
        return 1;
      continue;
    }
    bool IsAdd = Tok[0] == "add";
    if (!IsAdd && Tok[0] != "retract") {
      std::fprintf(stderr,
                   "%s:%u: error: expected add/retract/update, got '%s'\n",
                   ScriptPath.c_str(), LineNo, Tok[0].c_str());
      return 1;
    }
    if (Tok.size() < 2) {
      std::fprintf(stderr, "%s:%u: error: %s needs a predicate name\n",
                   ScriptPath.c_str(), LineNo, Tok[0].c_str());
      return 1;
    }
    auto Id = C.predicate(Tok[1]);
    auto InfoIt = CM.Preds.find(Tok[1]);
    if (!Id || InfoIt == CM.Preds.end()) {
      std::fprintf(stderr, "%s:%u: error: unknown predicate '%s'\n",
                   ScriptPath.c_str(), LineNo, Tok[1].c_str());
      return 1;
    }
    const PredInfo &Info = InfoIt->second;
    if (Tok.size() - 2 != Info.AttrTypes.size()) {
      std::fprintf(stderr, "%s:%u: error: %s expects %zu columns, got "
                           "%zu\n",
                   ScriptPath.c_str(), LineNo, Tok[1].c_str(),
                   Info.AttrTypes.size(), Tok.size() - 2);
      return 1;
    }
    std::vector<Value> Vals(Info.AttrTypes.size());
    for (size_t I = 0; I < Vals.size(); ++I) {
      std::string Err;
      if (!parseColumn(F, Info.AttrTypes[I], Tok[I + 2], Vals[I], Err)) {
        std::fprintf(stderr, "%s:%u: error: column %zu: %s\n",
                     ScriptPath.c_str(), LineNo, I + 1, Err.c_str());
        return 1;
      }
    }
    bool IsLat = Info.Decl->IsLat;
    std::span<const Value> Key(Vals.data(),
                               IsLat ? Vals.size() - 1 : Vals.size());
    if (IsAdd) {
      if (IsLat)
        IS.addLatFact(*Id, Key, Vals.back());
      else
        IS.addFact(*Id, Key);
    } else {
      if (IsLat)
        IS.retractLatFact(*Id, Key, Vals.back());
      else
        IS.retractFact(*Id, Key);
    }
  }
  if (IS.pendingMutations() > 0 && !runUpdate())
    return 1;

  if (!PrintPreds.empty()) {
    for (const std::string &Name : PrintPreds) {
      auto Id = C.predicate(Name);
      if (!Id) {
        std::fprintf(stderr, "error: unknown predicate '%s'\n",
                     Name.c_str());
        return 1;
      }
      printPredicate(P, IS, *Id);
    }
  } else if (!Json) {
    for (PredId Id = 0; Id < P.predicates().size(); ++Id) {
      if (IS.table(Id).liveSize() <= 50)
        printPredicate(P, IS, Id);
      else
        std::printf("%s (%zu rows, use --print %s to list)\n",
                    P.predicate(Id).Name.c_str(), IS.table(Id).liveSize(),
                    P.predicate(Id).Name.c_str());
    }
  }

  for (const std::string &Name : ExplainPreds) {
    auto Id = C.predicate(Name);
    if (!Id) {
      std::fprintf(stderr, "error: unknown predicate '%s'\n", Name.c_str());
      return 1;
    }
    std::printf("derivations of %s:\n", Name.c_str());
    size_t Shown = 0;
    for (const auto &Row : IS.tuples(*Id)) {
      std::span<const Value> Key(Row.data(), P.predicate(*Id).keyArity());
      std::printf("%s", IS.explainString(*Id, Key).c_str());
      if (++Shown >= 20) {
        std::printf("  ... (%zu more rows)\n",
                    IS.table(*Id).liveSize() - Shown);
        break;
      }
    }
  }
  return 0;
}

int main(int Argc, char **Argv) {
  SolverOptions Opts;
  bool DumpProgram = false;
  bool Stats = false;
  bool Json = false;
  std::vector<std::string> PrintPreds;
  std::vector<std::string> ExplainPreds;
  std::string InputPath;
  std::string FactsDir;
  std::string UpdateScriptPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--naive") {
      Opts.Strat = Strategy::Naive;
    } else if (Arg == "--no-index") {
      Opts.UseIndexes = false;
    } else if (Arg == "--no-plans") {
      Opts.CompilePlans = false;
    } else if (Arg == "--no-memo") {
      Opts.EnableMemo = false;
    } else if (Arg == "--no-vm") {
      Opts.UseVm = false;
    } else if (Arg == "--vm-opt-level") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --vm-opt-level needs a value\n");
        return 1;
      }
      Opts.VmOptLevel =
          static_cast<int>(parseIntFlag("--vm-opt-level", Argv[I], 0, 2));
    } else if (Arg == "--reorder") {
      Opts.ReorderBody = true;
    } else if (Arg == "--no-cost-plans") {
      Opts.CostBasedPlans = false;
    } else if (Arg == "--replan-threshold") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --replan-threshold needs a value\n");
        return 1;
      }
      Opts.ReplanThreshold =
          parseFloatFlag("--replan-threshold", Argv[I], 0.0);
    } else if (Arg == "--threads") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --threads needs a value\n");
        return 1;
      }
      long N = std::atol(Argv[I]);
      if (N < 0) {
        std::fprintf(stderr, "error: --threads needs a value >= 0\n");
        return 1;
      }
      Opts.NumThreads = static_cast<unsigned>(N);
    } else if (Arg == "--spill-threshold") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --spill-threshold needs a value\n");
        return 1;
      }
      long N = std::atol(Argv[I]);
      if (N < 0) {
        std::fprintf(stderr,
                     "error: --spill-threshold needs a value >= 0\n");
        return 1;
      }
      Opts.SpillThreshold = static_cast<uint32_t>(N);
    } else if (Arg == "--strict-index-coverage") {
      Opts.StrictIndexCoverage = true;
    } else if (Arg == "--update-script") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --update-script needs a file\n");
        return 1;
      }
      UpdateScriptPath = Argv[I];
    } else if (Arg == "--time-limit") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --time-limit needs a value\n");
        return 1;
      }
      Opts.TimeLimitSeconds = std::atof(Argv[I]);
    } else if (Arg == "--facts") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --facts needs a directory\n");
        return 1;
      }
      FactsDir = Argv[I];
    } else if (Arg == "--dump-program") {
      DumpProgram = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--print") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --print needs a predicate name\n");
        return 1;
      }
      PrintPreds.push_back(Argv[I]);
    } else if (Arg == "--explain") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --explain needs a predicate name\n");
        return 1;
      }
      ExplainPreds.push_back(Argv[I]);
      Opts.TrackProvenance = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty()) {
    printUsage();
    return 1;
  }
  // The incremental engine's inner solver is sequential (workers only
  // evaluate read-only), so --explain composes with --threads there.
  if (Opts.NumThreads > 0 && !ExplainPreds.empty() &&
      UpdateScriptPath.empty()) {
    std::fprintf(stderr, "error: --explain requires the sequential solver; "
                         "drop --threads or use --threads 0\n");
    return 1;
  }
  if (Opts.NumThreads > 0 && Opts.Strat == Strategy::Naive)
    std::fprintf(stderr, "warning: the parallel engine always evaluates "
                         "semi-naively; --naive is ignored\n");

  std::ifstream File(InputPath);
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s'\n", InputPath.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << File.rdbuf();

  ValueFactory F;
  FlixCompiler C(F);
  C.setUseVm(Opts.UseVm);
  C.setVmOptLevel(Opts.VmOptLevel);
  if (!C.compile(Buf.str(), InputPath)) {
    std::fprintf(stderr, "%s", C.diagnostics().c_str());
    return 1;
  }
  // Surface warnings (e.g. non-exhaustive matches) even on success.
  std::string Diags = C.diagnostics();
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.c_str());
  if (!FactsDir.empty()) {
    long Loaded = loadFactsDir(C, F, FactsDir);
    if (Loaded < 0)
      return 1;
    std::fprintf(stderr, "loaded %ld facts from %s\n", Loaded,
                 FactsDir.c_str());
  }
  if (DumpProgram) {
    std::printf("%s", C.program().dump().c_str());
    return 0;
  }

  // No interpreter serialization: Interp is intrinsically thread-safe
  // (Interp.h), so compiled programs run parallel with no outer lock.

  if (!UpdateScriptPath.empty())
    return runUpdateScript(C, F, Opts, UpdateScriptPath, PrintPreds,
                           ExplainPreds, Stats, Json);

  return solveWith(C.program(), Opts, [&](const auto &S,
                                          const SolveStats &St) -> int {
    if (St.St == SolveStats::Status::Error) {
      std::fprintf(stderr, "error: %s\n", St.Error.c_str());
      return 1;
    }
    if (St.St == SolveStats::Status::Timeout)
      std::fprintf(stderr, "warning: time limit reached; results are a "
                           "sound under-approximation of the fixpoint\n");
    if (C.interp().hasError()) {
      std::fprintf(stderr, "runtime error: %s\n",
                   C.interp().error().c_str());
      return 1;
    }

    const Program &P = C.program();
    if (!PrintPreds.empty()) {
      for (const std::string &Name : PrintPreds) {
        auto Id = C.predicate(Name);
        if (!Id) {
          std::fprintf(stderr, "error: unknown predicate '%s'\n",
                       Name.c_str());
          return 1;
        }
        printPredicate(P, S, *Id);
      }
    } else if (!Json) {
      for (PredId Id = 0; Id < P.predicates().size(); ++Id) {
        if (S.table(Id).size() <= 50)
          printPredicate(P, S, Id);
        else
          std::printf("%s (%zu rows, use --print %s to list)\n",
                      P.predicate(Id).Name.c_str(), S.table(Id).size(),
                      P.predicate(Id).Name.c_str());
      }
    }

    // Provenance (and hence --explain) only exists on the sequential
    // solver; --threads with --explain was rejected during parsing.
    if constexpr (std::is_same_v<std::decay_t<decltype(S)>, Solver>) {
      for (const std::string &Name : ExplainPreds) {
        auto Id = C.predicate(Name);
        if (!Id) {
          std::fprintf(stderr, "error: unknown predicate '%s'\n",
                       Name.c_str());
          return 1;
        }
        std::printf("derivations of %s:\n", Name.c_str());
        size_t Shown = 0;
        for (const auto &Row : S.tuples(*Id)) {
          std::span<const Value> Key(Row.data(),
                                     P.predicate(*Id).keyArity());
          std::printf("%s", S.explainString(*Id, Key).c_str());
          if (++Shown >= 20) {
            std::printf("  ... (%zu more rows)\n",
                        S.table(*Id).size() - Shown);
            break;
          }
        }
      }
    }

    if (Stats) {
      std::printf("\nstats: %llu iterations, %llu rule firings, %llu facts "
                  "derived, %.3f s, %.1f MB\n",
                  static_cast<unsigned long long>(St.Iterations),
                  static_cast<unsigned long long>(St.RuleFirings),
                  static_cast<unsigned long long>(St.FactsDerived),
                  St.Seconds,
                  static_cast<double>(St.MemoryBytes) /
                      (1024.0 * 1024.0));
      std::printf("plans: %llu compiled steps; memo: %llu hits, %llu "
                  "misses; fallback solves: %llu\n",
                  static_cast<unsigned long long>(St.PlanSteps),
                  static_cast<unsigned long long>(St.MemoHits),
                  static_cast<unsigned long long>(St.MemoMisses),
                  static_cast<unsigned long long>(St.FallbackSolves));
      std::printf("planner: %s, %llu cost-based orders, %llu replan "
                  "events, %llu est-vs-actual row drift\n",
                  Opts.CostBasedPlans ? "cost-based" : "greedy",
                  static_cast<unsigned long long>(St.CostBasedPlans),
                  static_cast<unsigned long long>(St.ReplanEvents),
                  static_cast<unsigned long long>(St.EstimatedVsActualRows));
      std::printf("vm: %s, %llu calls, %llu inline-cache hits, %llu "
                  "interp fallbacks\n",
                  Opts.UseVm ? "on" : "off",
                  static_cast<unsigned long long>(St.VmCalls),
                  static_cast<unsigned long long>(St.VmInlineCacheHits),
                  static_cast<unsigned long long>(St.InterpFallbacks));
      if (Opts.UseVm)
        std::printf("vm pipeline: level %d, %llu calls inlined, %llu "
                    "superwords fused, %llu instructions removed\n",
                    Opts.VmOptLevel,
                    static_cast<unsigned long long>(St.VmInlinedCalls),
                    static_cast<unsigned long long>(St.VmSuperwordHits),
                    static_cast<unsigned long long>(St.VmPassesRemovedInsns));
      if (Opts.NumThreads > 0)
        std::printf("parallel: %u threads, %llu tasks, %llu steals, %llu "
                    "merge collisions, %llu spawned subtasks (max fanout "
                    "%llu), %llu index-build tasks\n",
                    Opts.NumThreads,
                    static_cast<unsigned long long>(St.ParallelTasks),
                    static_cast<unsigned long long>(St.ParallelSteals),
                    static_cast<unsigned long long>(St.MergeCollisions),
                    static_cast<unsigned long long>(St.SpawnedSubtasks),
                    static_cast<unsigned long long>(St.MaxFanout),
                    static_cast<unsigned long long>(St.IndexBuildTasks));
    }
    if (Json)
      printJsonStats(St, Opts);
    return 0;
  });
}
