//===- tools/flixd.cpp - The FLIX fixpoint daemon -------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// flixd: a long-lived daemon holding named FLIX databases — each a
// compiled program plus an incremental solver — behind a
// newline-delimited JSON protocol (see src/server/Protocol.h and
// DESIGN.md S14). Start it, then drive it with flixbench_client or any
// line-oriented JSON client:
//
//   flixd --port 7643 &
//   printf '%s\n' '{"op":"ping"}' | nc 127.0.0.1 7643
//
// With --port 0 the kernel picks the port; --port-file writes the bound
// port for scripts. --preload compiles a program file into a database
// before the socket opens, so clients never observe a half-loaded db.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace flix;
using namespace flix::server;

static void printUsage() {
  std::fprintf(
      stderr,
      "usage: flixd [options]\n"
      "\n"
      "  --port N              TCP port (default 7643; 0 = ephemeral)\n"
      "  --host ADDR           TCP listen address (default 127.0.0.1)\n"
      "  --unix PATH           listen on a Unix-domain socket instead\n"
      "  --port-file PATH      write the bound TCP port to PATH\n"
      "  --preload DB=FILE     load FILE as database DB before serving\n"
      "  --threads N           solver threads per update batch\n"
      "  --no-vm               interpret FLIX functions (disable the\n"
      "                        bytecode VM)\n"
      "  --vm-opt-level N      bytecode optimization pipeline: 0 = off,\n"
      "                        1 = local passes, 2 = inlining + local\n"
      "                        passes (default 2)\n"
      "  --no-cost-plans       freeze driver-first join orders\n"
      "  --replan-threshold X  adaptive re-plan hysteresis factor\n"
      "                        (0 disables between-round re-planning)\n"
      "  --update-time-limit S per-batch solve budget in seconds\n"
      "  --max-connections N   concurrent connection bound (default 64)\n"
      "  --max-inflight N      concurrent request bound (default 256)\n"
      "  --max-line-bytes N    request line byte bound (default 4MiB)\n"
      "  --max-pending-facts N staged-row bound per db (default 1Mi)\n");
}

/// Parses a decimal integer flag value, rejecting garbage, trailing
/// junk and out-of-range input. The std::atoi it replaces silently
/// turned all of those into 0 — and let `--port 99999` wrap mod 2^16.
static long long parseIntFlag(const char *Flag, const char *Text,
                              long long Min, long long Max) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || V < Min || V > Max) {
    std::fprintf(stderr,
                 "flixd: %s wants an integer in [%lld, %lld], got '%s'\n",
                 Flag, Min, Max, Text);
    std::exit(2);
  }
  return V;
}

/// Same discipline for floating-point flags (replaces std::atof).
static double parseFloatFlag(const char *Flag, const char *Text,
                             double Min) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE || !(V >= Min)) {
    std::fprintf(stderr, "flixd: %s wants a number >= %g, got '%s'\n",
                 Flag, Min, Text);
    std::exit(2);
  }
  return V;
}

int main(int argc, char **argv) {
  ServerOptions Opt;
  Opt.Port = 7643;
  std::string PortFile;
  std::vector<std::pair<std::string, std::string>> Preloads;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "flixd: %s needs a value\n", argv[I]);
      std::exit(2);
    }
    return argv[++I];
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      printUsage();
      return 0;
    } else if (A == "--port") {
      Opt.Port = uint16_t(parseIntFlag("--port", needValue(I), 0, 65535));
    } else if (A == "--host") {
      Opt.Host = needValue(I);
    } else if (A == "--unix") {
      Opt.UnixPath = needValue(I);
    } else if (A == "--port-file") {
      PortFile = needValue(I);
    } else if (A == "--preload") {
      std::string Spec = needValue(I);
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "flixd: --preload wants DB=FILE, got '%s'\n",
                     Spec.c_str());
        return 2;
      }
      Preloads.emplace_back(Spec.substr(0, Eq), Spec.substr(Eq + 1));
    } else if (A == "--threads") {
      Opt.Solve.NumThreads =
          unsigned(parseIntFlag("--threads", needValue(I), 0, 1024));
    } else if (A == "--no-vm") {
      Opt.Solve.UseVm = false;
    } else if (A == "--vm-opt-level") {
      Opt.Solve.VmOptLevel =
          int(parseIntFlag("--vm-opt-level", needValue(I), 0, 2));
    } else if (A == "--no-cost-plans") {
      Opt.Solve.CostBasedPlans = false;
    } else if (A == "--replan-threshold") {
      Opt.Solve.ReplanThreshold =
          parseFloatFlag("--replan-threshold", needValue(I), 0.0);
    } else if (A == "--update-time-limit") {
      Opt.UpdateTimeLimitSeconds =
          parseFloatFlag("--update-time-limit", needValue(I), 0.0);
    } else if (A == "--max-connections") {
      Opt.MaxConnections =
          unsigned(parseIntFlag("--max-connections", needValue(I), 1, 1 << 20));
    } else if (A == "--max-inflight") {
      Opt.MaxInflight =
          unsigned(parseIntFlag("--max-inflight", needValue(I), 1, 1 << 20));
    } else if (A == "--max-line-bytes") {
      Opt.MaxLineBytes = size_t(
          parseIntFlag("--max-line-bytes", needValue(I), 1, 1LL << 40));
    } else if (A == "--max-pending-facts") {
      Opt.MaxPendingFactsPerDb = uint64_t(
          parseIntFlag("--max-pending-facts", needValue(I), 1, 1LL << 40));
    } else {
      std::fprintf(stderr, "flixd: unknown option '%s'\n", A.c_str());
      printUsage();
      return 2;
    }
  }

  // The daemon writes replies to sockets that can vanish mid-write.
  std::signal(SIGPIPE, SIG_IGN);

  Server Srv(Opt);

  for (const auto &[Db, File] : Preloads) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "flixd: cannot read '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Src;
    Src << In.rdbuf();
    Json Req = Json::object();
    Req.set("op", Json::str("load_program"));
    Req.set("db", Json::str(Db));
    Req.set("source", Json::str(Src.str()));
    std::string Reply = Srv.handleLine(writeJson(Req));
    Json ReplyJ;
    std::string Err;
    const Json *Ok = nullptr;
    if (parseJson(Reply, ReplyJ, Err))
      Ok = ReplyJ.get("ok");
    if (!Ok || !Ok->isBool() || !Ok->B) {
      std::fprintf(stderr, "flixd: preload of '%s' failed: %s\n",
                   Db.c_str(), Reply.c_str());
      return 1;
    }
    std::fprintf(stderr, "flixd: preloaded database '%s' from %s\n",
                 Db.c_str(), File.c_str());
  }

  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "flixd: %s\n", Err.c_str());
    return 1;
  }
  if (!PortFile.empty()) {
    std::ofstream Out(PortFile, std::ios::trunc);
    Out << Srv.port() << "\n";
    if (!Out) {
      std::fprintf(stderr, "flixd: cannot write port file '%s'\n",
                   PortFile.c_str());
      Srv.stop();
      Srv.wait();
      return 1;
    }
  }
  if (!Opt.UnixPath.empty())
    std::fprintf(stderr, "flixd: listening on %s\n", Opt.UnixPath.c_str());
  else
    std::fprintf(stderr, "flixd: listening on %s:%u\n", Opt.Host.c_str(),
                 unsigned(Srv.port()));
  std::fflush(stderr);

  Srv.wait();
  std::fprintf(stderr, "flixd: shut down\n");
  return 0;
}
